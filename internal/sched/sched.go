// Package sched implements iPipe's NIC-side actor scheduler (§3.2), the
// central contribution of the paper: a hybrid discipline that runs
// low-dispersion actors to completion under FCFS off a shared queue and
// delegates high-dispersion actors to DRR (deficit round robin) cores —
// an efficient non-preemptive approximation of processor sharing — while
// migrating actors to the host when the SmartNIC cannot keep up.
//
// The concrete algorithms follow ALG 1 (FCFS cores) and ALG 2 (DRR
// cores) in the paper's appendix:
//
//   - All cores start in FCFS mode, pulling requests from the shared
//     incoming queue (hardware traffic manager on on-path NICs, software
//     shuffle layer with work stealing on off-path ones, §3.2.6).
//   - When the FCFS group's tail latency (µ+3σ EWMA) exceeds
//     TailThresh, the actor with the highest dispersion is downgraded to
//     the DRR runnable queue, spawning a DRR core if needed.
//   - DRR cores scan runnable actors round-robin; an actor executes one
//     mailbox request when its deficit counter exceeds its estimated
//     latency. The quantum is the maximum tolerated forwarding latency
//     for the actor's average request size (the compute headroom of
//     §2.2.2).
//   - When the FCFS tail drops below (1−α)·TailThresh, the
//     lowest-dispersion DRR actor is upgraded back to FCFS.
//   - When FCFS mean latency exceeds MeanThresh, the management core
//     (core 0) pushes the highest-load actor to the host; when it falls
//     below (1−α)·MeanThresh with CPU headroom, it pulls the
//     least-load host actor back. A DRR actor whose mailbox exceeds
//     QThresh is pushed to the host directly.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/actor"
	"repro/internal/invariant"
	"repro/internal/sim"
	"repro/internal/stats"
)

// monitorPeriod is how often the management core samples utilization
// and evaluates migration/autoscaling conditions.
const monitorPeriod = 100 * sim.Microsecond

// Mode is a core's scheduling mode.
type Mode uint8

// Core modes.
const (
	FCFS Mode = iota
	DRR
	// Dispatch marks the IOKernel dispatcher core (§3.2.6).
	Dispatch
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case FCFS:
		return "FCFS"
	case DRR:
		return "DRR"
	default:
		return "Dispatch"
	}
}

// Hooks connects the scheduler to the surrounding runtime. All fields
// are required unless noted.
type Hooks struct {
	// Run executes an actor handler for one message and returns the
	// NIC-core service time (handler cost scaled to this NIC, plus any
	// costs the handler incurred through its context: sends, DMA,
	// accelerators). The forwarding tax is charged by the scheduler.
	Run func(a *actor.Actor, m actor.Msg) sim.Time
	// FwdTax is the per-packet dispatch cost on a core (spec.FwdTax).
	FwdTax func(bytes int) sim.Time
	// Forward delivers a message that no NIC actor owns (host-bound
	// traffic). The scheduler has already charged the forwarding tax.
	Forward func(m actor.Msg)
	// Quantum returns the DRR quantum for an actor: the max tolerated
	// forwarding latency at the actor's average request size.
	Quantum func(avgReqBytes int) sim.Time
	// PushToHost migrates an actor off the NIC (4-phase protocol in the
	// runtime); optional — nil disables migration.
	PushToHost func(a *actor.Actor)
	// PullFromHost asks the runtime to bring the least-loaded host actor
	// back; it reports whether a pull was initiated. Optional.
	PullFromHost func() bool

	// Observability callbacks, consumed by internal/obs through the node
	// runtime. All are optional (nil-safe) and must be passive: they may
	// record what happened but must not mutate scheduler state, or runs
	// stop being reproducible with observation off.

	// OnExec observes every completed core operation: an actor execution
	// (a non-nil) or the forwarding of host-bound traffic (a nil).
	// start/end bound the core occupancy; m.ArrivedAt gives queueing.
	OnExec func(coreID int, mode Mode, a *actor.Actor, m actor.Msg, start, end sim.Time)
	// OnModeSwitch observes an actor moving between scheduling
	// disciplines: a downgrade (to == DRR) or an upgrade (to == FCFS).
	OnModeSwitch func(a *actor.Actor, to Mode)
	// OnMigrate observes a migration decision: push == true when an
	// actor is pushed NIC→host (a is the victim), false when a pull
	// host→NIC was initiated (a nil: the runtime picks the actor).
	OnMigrate func(a *actor.Actor, push bool)
	// OnAutoscale observes a core changing group (FCFS↔DRR), whether by
	// the autoscaler, DRR-core spawning, or collapse.
	OnAutoscale func(coreID int, from, to Mode)
}

// Config carries the scheduler thresholds (§3.2.3: set from the NIC's
// own MTU line-rate characterization) and structural parameters.
type Config struct {
	Cores int
	// TailThresh/MeanThresh are sojourn-time thresholds in microseconds.
	TailThresh float64
	MeanThresh float64
	// Alpha is the hysteresis factor α.
	Alpha float64
	// QThresh is the DRR mailbox length that triggers direct migration.
	QThresh int
	// Shuffle selects the software shuffle layer (off-path NICs without
	// a hardware traffic manager) instead of the shared queue.
	Shuffle bool
	// IOKernel selects §3.2.6's other software alternative: a dedicated
	// dispatcher core (Shenango-IOKernel style) feeding per-worker
	// queues. It takes precedence over Shuffle and costs one core.
	IOKernel bool
	// DispatcherCost is the IOKernel per-message routing cost.
	DispatcherCost sim.Time
	// AllDRR places every actor in the DRR runnable queue at
	// registration and keeps it there — the standalone DRR discipline
	// the paper compares against in §5.4. (The standalone FCFS
	// comparator is TailThresh = 0, which never downgrades.)
	AllDRR bool
	// ScanCost is the DRR per-actor visit cost (pointer chase + deficit
	// update); a small constant keeps virtual time advancing.
	ScanCost sim.Time
	// DispatchCost is the FCFS cost to push a DRR actor's message into
	// its mailbox.
	DispatchCost sim.Time
	// ExtraDispatch is charged on every FCFS execution in addition to
	// the forwarding tax; it models heavier per-message runtimes (the
	// Floem comparator's logical-queue multiplexing, §5.6).
	ExtraDispatch sim.Time
	// StatsAlpha is the EWMA smoothing for group latency statistics.
	StatsAlpha float64
	// MigrationCooldown is the minimum spacing between migrations. A
	// migration stalls the moving actor for up to tens of milliseconds
	// (Figure 18), and right after one the FCFS statistics reflect only
	// cheap forwarding work, so deciding again immediately thrashes.
	MigrationCooldown sim.Time
}

// DefaultConfig returns reasonable structural defaults; thresholds must
// still be set per NIC.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:             cores,
		Alpha:             0.2,
		QThresh:           64,
		ScanCost:          50 * sim.Nanosecond,
		DispatchCost:      100 * sim.Nanosecond,
		StatsAlpha:        0.02,
		MigrationCooldown: 5 * sim.Millisecond,
	}
}

// Scheduler is the NIC-side scheduler instance.
type Scheduler struct {
	eng   *sim.Engine
	cfg   Config
	hooks Hooks

	cores []*core
	queue inQueue // shared FCFS ingress (hardware or shuffle)

	// actors maps NIC-resident actors by ID.
	actors map[actor.ID]*actor.Actor
	// drrRunnable is the single runnable queue all DRR cores share.
	drrRunnable []*actor.Actor

	// fcfsStats tracks sojourn times (queueing + execution) of FCFS
	// operations; its Tail()/Mean() drive downgrade and migration.
	fcfsStats stats.EWMA

	// chk/chkLabel carry the invariant checker (nil when disabled) and
	// this scheduler's label in its reports (the node name).
	chk      *invariant.Checker
	chkLabel string

	// Counters for experiments.
	Completed         uint64
	Forwarded         uint64
	Downgrades        uint64
	Upgrades          uint64
	PushMigrations    uint64
	PullMigrations    uint64
	CoreMoves         uint64
	migrationInFlight bool
	lastMigration     sim.Time
	lastMonitor       sim.Time
}

// New creates a scheduler with the given configuration and hooks.
func New(eng *sim.Engine, cfg Config, hooks Hooks) *Scheduler {
	if cfg.Cores <= 0 {
		panic("sched: need at least one core")
	}
	if hooks.Run == nil || hooks.FwdTax == nil {
		panic("sched: Run and FwdTax hooks are required")
	}
	if cfg.StatsAlpha == 0 {
		cfg.StatsAlpha = 0.02
	}
	s := &Scheduler{
		eng:    eng,
		cfg:    cfg,
		hooks:  hooks,
		actors: map[actor.ID]*actor.Actor{},
	}
	s.fcfsStats.Alpha = cfg.StatsAlpha
	switch {
	case cfg.IOKernel:
		if cfg.Cores < 2 {
			panic("sched: IOKernel mode needs at least two cores")
		}
		if s.cfg.DispatcherCost == 0 {
			s.cfg.DispatcherCost = 250 * sim.Nanosecond
		}
		s.queue = newIOKQueue(cfg.Cores - 1)
	case cfg.Shuffle:
		s.queue = newShuffleQueue(cfg.Cores)
	default:
		s.queue = newSharedQueue()
	}
	for i := 0; i < cfg.Cores; i++ {
		c := newCore(s, i)
		if cfg.IOKernel && i == cfg.Cores-1 {
			c.mode = Dispatch
		}
		s.cores = append(s.cores, c)
	}
	return s
}

// Thresholds returns the current sojourn-time migration thresholds
// (TailThresh, MeanThresh) in microseconds.
func (s *Scheduler) Thresholds() (tailUs, meanUs float64) {
	return s.cfg.TailThresh, s.cfg.MeanThresh
}

// SetThresholds retunes the §3.2.3 migration thresholds at runtime —
// the knob an SLO control loop turns to make the EWMA tail signal fire
// earlier (tighter thresholds shed NIC load to the host sooner). A zero
// argument keeps the corresponding threshold unchanged.
func (s *Scheduler) SetThresholds(tailUs, meanUs float64) {
	if tailUs > 0 {
		s.cfg.TailThresh = tailUs
	}
	if meanUs > 0 {
		s.cfg.MeanThresh = meanUs
	}
}

// EnableInvariants attaches the runtime checker: the ingress queue gets
// a per-flow FIFO audit, DRR runnable-queue membership and cursor
// visits are tracked for round fairness, and each monitor tick
// validates core busy-time against wall time. Call before the first
// message arrives (a mid-run attach would see pops of unaudited
// pushes); label names this scheduler in reports, typically the node.
func (s *Scheduler) EnableInvariants(chk *invariant.Checker, label string) {
	if chk == nil || s.chk != nil {
		return
	}
	s.chk = chk
	s.chkLabel = label
	s.queue.setAudit(chk.NewQueueAudit(label + "/ingress"))
	for _, a := range s.drrRunnable {
		chk.DRRAdd(label, uint32(a.ID))
	}
}

// maybeMonitor runs the management core's periodic duties — sample
// per-core utilization over the last window, balance cores between the
// FCFS and DRR groups, evaluate the migration conditions — at most once
// per monitorPeriod. It is invoked from core completion paths, so it is
// activity-driven: an idle scheduler makes no decisions and leaves the
// event loop free to drain.
func (s *Scheduler) maybeMonitor() {
	now := s.eng.Now()
	if now-s.lastMonitor < monitorPeriod {
		return
	}
	window := now - s.lastMonitor
	s.lastMonitor = now
	for _, c := range s.cores {
		c.settle()
		s.chk.CoreBusy(s.chkLabel, c.id, c.busyAccum, now)
		c.winU = float64(c.busyAccum-c.winPrev) / float64(window)
		if c.winU > 1 {
			c.winU = 1
		}
		c.winPrev = c.busyAccum
	}
	s.autoscale()
	s.maybeUpgrade()
	s.maybeMigrate()
}

// maybeUpgrade returns DRR actors whose service dispersion is no longer
// an outlier to FCFS — the periodic counterpart of ALG 2's tail-based
// upgrade, which alone can starve a misclassified actor when the group
// tail never recovers below (1−α)·TailThresh.
func (s *Scheduler) maybeUpgrade() {
	if s.cfg.AllDRR || len(s.drrRunnable) == 0 {
		return
	}
	tails := make([]float64, 0, len(s.actors))
	for _, a := range s.actors {
		if a.State == actor.Stable && a.ServiceStats.Count() > 0 {
			tails = append(tails, a.ServiceStats.Tail())
		}
	}
	if len(tails) == 0 {
		return
	}
	sort.Float64s(tails)
	median := tails[(len(tails)-1)/2]
	for _, a := range s.drrRunnable {
		if a.State != actor.Stable {
			continue
		}
		if a.ServiceStats.Tail() <= 1.25*median {
			s.drrDequeue(a)
			a.InDRR = false
			s.Upgrades++
			if s.hooks.OnModeSwitch != nil {
				s.hooks.OnModeSwitch(a, FCFS)
			}
			for _, m := range a.Mailbox.Drain() {
				s.queue.push(m)
			}
			s.wakeFCFS()
			if len(s.drrRunnable) == 0 {
				s.collapseDRRCores()
			}
			return // at most one per tick
		}
	}
}

// AddActor registers a NIC-resident actor with the dispatcher.
func (s *Scheduler) AddActor(a *actor.Actor) {
	s.actors[a.ID] = a
	a.State = actor.Stable
	if s.cfg.AllDRR && !a.InDRR {
		a.InDRR = true
		a.Deficit = 0
		s.drrRunnable = append(s.drrRunnable, a)
		s.chk.DRRAdd(s.chkLabel, uint32(a.ID))
		s.ensureDRRCore()
	}
}

// RemoveActor deregisters an actor (migration or DoS kill). Its mailbox
// is left to the caller (migration forwards it; the watchdog drops it).
func (s *Scheduler) RemoveActor(id actor.ID) {
	a, ok := s.actors[id]
	if !ok {
		return
	}
	delete(s.actors, id)
	if a.InDRR {
		s.drrDequeue(a)
		a.InDRR = false
	}
}

// Actor returns a NIC-resident actor by ID.
func (s *Scheduler) Actor(id actor.ID) (*actor.Actor, bool) {
	a, ok := s.actors[id]
	return a, ok
}

// Actors returns the number of NIC-resident actors.
func (s *Scheduler) Actors() int { return len(s.actors) }

// Arrive injects an incoming request (from the wire or from the host
// rings) into the ingress queue and wakes an FCFS core.
func (s *Scheduler) Arrive(m actor.Msg) {
	m.ArrivedAt = s.eng.Now()
	s.queue.push(m)
	s.wakeFCFS()
	// If the target actor sits in DRR, a DRR core may also be able to
	// make progress once the FCFS side moves the message to the mailbox;
	// nothing to do here.
}

// EnqueueMailbox places a message directly into a DRR actor's mailbox
// (used by the runtime when forwarding host→NIC actor messages).
func (s *Scheduler) EnqueueMailbox(a *actor.Actor, m actor.Msg) {
	m.ArrivedAt = s.eng.Now()
	a.Mailbox.Push(m)
	s.wakeDRR()
}

// FCFSTail returns the FCFS group's current µ+3σ sojourn estimate (µs).
func (s *Scheduler) FCFSTail() float64 { return s.fcfsStats.Tail() }

// FCFSMean returns the FCFS group's mean sojourn estimate (µs).
func (s *Scheduler) FCFSMean() float64 { return s.fcfsStats.Mean() }

// NumCores returns the total number of NIC cores (including a dispatcher).
func (s *Scheduler) NumCores() int { return len(s.cores) }

// CoreModes returns the number of cores in the FCFS and DRR groups
// (an IOKernel dispatcher core belongs to neither).
func (s *Scheduler) CoreModes() (fcfs, drr int) {
	for _, c := range s.cores {
		switch c.mode {
		case FCFS:
			fcfs++
		case DRR:
			drr++
		}
	}
	return
}

// Utilization returns mean busy fraction per group since start.
func (s *Scheduler) Utilization() (fcfs, drr float64) {
	var fb, db sim.Time
	var fn, dn int
	for _, c := range s.cores {
		c.settle()
		if c.mode == FCFS {
			fb += c.busyAccum
			fn++
		} else {
			db += c.busyAccum
			dn++
		}
	}
	now := s.eng.Now()
	if now == 0 {
		return 0, 0
	}
	if fn > 0 {
		fcfs = float64(fb) / float64(int64(now)*int64(fn))
	}
	if dn > 0 {
		drr = float64(db) / float64(int64(now)*int64(dn))
	}
	return
}

// QueueBacklog reports messages waiting in the ingress queue.
func (s *Scheduler) QueueBacklog() int { return s.queue.len() }

// DRRBacklog reports total mailbox backlog across DRR actors.
func (s *Scheduler) DRRBacklog() int {
	n := 0
	for _, a := range s.drrRunnable {
		n += a.Mailbox.Len()
	}
	return n
}

func (s *Scheduler) wakeFCFS() {
	if s.cfg.IOKernel {
		// Arrivals land in the central buffer: wake the dispatcher; it
		// wakes workers as it routes.
		s.cores[len(s.cores)-1].kick()
	}
	for _, c := range s.cores {
		if c.mode == FCFS && c.idle {
			c.kick()
			return
		}
	}
}

func (s *Scheduler) wakeDRR() {
	for _, c := range s.cores {
		if c.mode == DRR && c.idle {
			c.kick()
			return
		}
	}
}

// downgrade moves the highest-dispersion FCFS actor into the DRR
// runnable queue (ALG 1 lines 13–16). Dispersion here is the µ+3σ of
// the actor's *service* time: the scheduler isolates actors whose
// execution costs are variable or heavy, which is what disrupts FCFS.
// The victim must stand out — its dispersion must clearly exceed the
// median actor's — otherwise downgrading cannot help (a homogeneous
// population under load breaches the tail threshold through queueing,
// and evicting arbitrary actors would only thrash).
func (s *Scheduler) downgrade() {
	var victim *actor.Actor
	tails := make([]float64, 0, len(s.actors))
	// Require a few samples before classifying; rare-but-heavy actors
	// must stay eligible, so the bar is low.
	const minSamples = 4
	for _, a := range s.actors {
		if a.State != actor.Stable || a.ServiceStats.Count() < minSamples {
			continue
		}
		tails = append(tails, a.ServiceStats.Tail())
		if a.InDRR {
			continue
		}
		// Ties break by actor ID so the victim never depends on map
		// iteration order (symmetric shard actors tie routinely).
		if victim == nil || a.ServiceStats.Tail() > victim.ServiceStats.Tail() ||
			(a.ServiceStats.Tail() == victim.ServiceStats.Tail() && a.ID < victim.ID) {
			victim = a
		}
	}
	if victim == nil || len(tails) == 0 {
		return
	}
	sort.Float64s(tails)
	median := tails[(len(tails)-1)/2]
	if victim.ServiceStats.Tail() <= 2*median {
		return
	}
	victim.InDRR = true
	victim.Deficit = 0
	s.drrRunnable = append(s.drrRunnable, victim)
	s.chk.DRRAdd(s.chkLabel, uint32(victim.ID))
	s.Downgrades++
	if s.hooks.OnModeSwitch != nil {
		s.hooks.OnModeSwitch(victim, DRR)
	}
	s.ensureDRRCore()
}

// upgrade returns the lowest-dispersion DRR actor to FCFS (ALG 2 lines
// 10–12), with the symmetric guard to downgrade(): an actor whose
// service dispersion still stands out against the population stays in
// DRR even when the FCFS tail has recovered — precisely because it
// recovered by isolating that actor.
func (s *Scheduler) upgrade() {
	if len(s.drrRunnable) == 0 {
		return
	}
	tails := make([]float64, 0, len(s.actors))
	for _, a := range s.actors {
		if a.State == actor.Stable && a.ServiceStats.Count() > 0 {
			tails = append(tails, a.ServiceStats.Tail())
		}
	}
	if len(tails) == 0 {
		return
	}
	sort.Float64s(tails)
	median := tails[(len(tails)-1)/2]
	best := -1
	for i, a := range s.drrRunnable {
		if a.State != actor.Stable {
			continue
		}
		if best == -1 || a.ServiceStats.Tail() < s.drrRunnable[best].ServiceStats.Tail() {
			best = i
		}
	}
	if best == -1 {
		return
	}
	a := s.drrRunnable[best]
	if a.ServiceStats.Tail() > 1.5*median {
		return
	}
	s.drrDequeue(a)
	a.InDRR = false
	s.Upgrades++
	if s.hooks.OnModeSwitch != nil {
		s.hooks.OnModeSwitch(a, FCFS)
	}
	// Drain its mailbox back through the shared queue so FCFS cores
	// serve the backlog.
	for _, m := range a.Mailbox.Drain() {
		s.queue.push(m)
	}
	s.wakeFCFS()
	if len(s.drrRunnable) == 0 {
		s.collapseDRRCores()
	}
}

func (s *Scheduler) drrDequeue(a *actor.Actor) {
	for i, x := range s.drrRunnable {
		if x == a {
			s.drrRunnable = append(s.drrRunnable[:i], s.drrRunnable[i+1:]...)
			// Removing below a core's cursor shifts every later actor
			// down one slot; a cursor left as-is would silently skip the
			// actor that moved into the vacated position, costing it a
			// whole DRR round (and its quantum). Pull the cursors back in
			// step so each runnable actor keeps exactly one visit per
			// round.
			for _, c := range s.cores {
				if c.drrPos > i {
					c.drrPos--
				}
			}
			s.chk.DRRRemove(s.chkLabel, uint32(a.ID))
			return
		}
	}
}

// ensureDRRCore spawns a DRR core when an actor enters DRR and none
// exists (§3.2.4: "When an actor is pushed into the DRR runnable queue,
// the scheduler spawns a core for DRR execution").
func (s *Scheduler) ensureDRRCore() {
	for _, c := range s.cores {
		if c.mode == DRR {
			s.wakeDRR()
			return
		}
	}
	// Convert the last FCFS core (never core 0, the management core,
	// nor an IOKernel dispatcher).
	for i := len(s.cores) - 1; i > 0; i-- {
		if s.cores[i].mode == FCFS {
			s.cores[i].setMode(DRR)
			s.CoreMoves++
			s.wakeDRR()
			return
		}
	}
}

// collapseDRRCores returns all DRR cores to FCFS once the runnable queue
// is empty.
func (s *Scheduler) collapseDRRCores() {
	for _, c := range s.cores {
		if c.mode == DRR {
			c.setMode(FCFS)
			s.CoreMoves++
		}
	}
	s.wakeFCFS()
}

// autoscale implements §3.2.4's core balancing between the groups,
// with two refinements over the raw utilization rule:
//
//   - the DRR group is capped at the parallelism its runnable actors
//     can actually exploit (an exclusive actor occupies at most one
//     core; surplus DRR cores only spin the scan loop, which reads as
//     saturation while starving FCFS);
//   - the FCFS group has reclaim priority: conveying traffic is the
//     on-path NIC's basic duty (§3.2.1), so a saturated FCFS group
//     takes a core back from DRR regardless of DRR's utilization.
func (s *Scheduler) autoscale() {
	fcfsN, drrN := s.CoreModes()
	if drrN == 0 || fcfsN <= 1 {
		return
	}
	maxDRR := 0
	for _, a := range s.drrRunnable {
		if a.Exclusive {
			maxDRR++
		} else {
			maxDRR += s.cfg.Cores
		}
	}
	if maxDRR < 1 {
		maxDRR = 1
	}
	if maxDRR > s.cfg.Cores-1 {
		maxDRR = s.cfg.Cores - 1
	}
	fcfsU, drrU := s.groupWindowUtil()
	// Move a core FCFS→DRR when DRR is saturated and FCFS can spare one.
	if drrN < maxDRR && drrU >= 0.95 && fcfsU < float64(fcfsN-1)/float64(fcfsN) {
		for i := len(s.cores) - 1; i > 0; i-- {
			if s.cores[i].mode == FCFS {
				s.cores[i].setMode(DRR)
				s.CoreMoves++
				s.wakeDRR()
				return
			}
		}
	}
	// And back: DRR over-provisioned or underused, or FCFS saturated
	// (forwarding priority; suspended under AllDRR where FCFS cores
	// only dispatch).
	reclaim := drrN > maxDRR ||
		(fcfsU >= 0.95 && drrU < float64(drrN-1)/float64(drrN)) ||
		(!s.cfg.AllDRR && fcfsU >= 0.95)
	if drrN > 1 && reclaim {
		for i := len(s.cores) - 1; i > 0; i-- {
			if s.cores[i].mode == DRR {
				s.cores[i].setMode(FCFS)
				s.CoreMoves++
				s.wakeFCFS()
				return
			}
		}
	}
}

// groupWindowUtil returns last-window utilization per group.
func (s *Scheduler) groupWindowUtil() (fcfs, drr float64) {
	var fsum, dsum float64
	var fn, dn int
	for _, c := range s.cores {
		switch c.mode {
		case FCFS:
			fsum += c.winU
			fn++
		case DRR:
			dsum += c.winU
			dn++
		}
	}
	if fn > 0 {
		fcfs = fsum / float64(fn)
	}
	if dn > 0 {
		drr = dsum / float64(dn)
	}
	return
}

// maybeMigrate runs the management-core checks (ALG 1 lines 17–23).
func (s *Scheduler) maybeMigrate() {
	if s.migrationInFlight {
		return
	}
	if s.lastMigration != 0 && s.eng.Now()-s.lastMigration < s.cfg.MigrationCooldown {
		return
	}
	if s.hooks.PushToHost != nil && s.cfg.MeanThresh > 0 && s.fcfsStats.Mean() > s.cfg.MeanThresh {
		if a := s.highestLoadActor(); a != nil {
			s.migrationInFlight = true
			s.lastMigration = s.eng.Now()
			s.PushMigrations++
			a.State = actor.Prepare
			if s.hooks.OnMigrate != nil {
				s.hooks.OnMigrate(a, true)
			}
			s.hooks.PushToHost(a)
			return
		}
	}
	if s.hooks.PullFromHost != nil && s.cfg.MeanThresh > 0 &&
		s.fcfsStats.Mean() < (1-s.cfg.Alpha)*s.cfg.MeanThresh {
		fcfsU, _ := s.groupWindowUtil()
		if fcfsU < 0.8 { // sufficient CPU headroom
			s.migrationInFlight = true
			if s.hooks.PullFromHost() {
				s.lastMigration = s.eng.Now()
				s.PullMigrations++
				if s.hooks.OnMigrate != nil {
					s.hooks.OnMigrate(nil, false)
				}
			} else {
				s.migrationInFlight = false
			}
		}
	}
}

// TryLatchMigration acquires the single-migration latch from outside
// the policy path (the runtime's forced MigrateNow/PullNow). It
// returns false when a migration — policy-driven or forced — is
// already in flight, so a forced migration can never interleave with
// one and double-release the latch. On success the caller owns the
// latch until the protocol calls MigrationDone; lastMigration is
// stamped so the policy's cooldown spaces itself against forced
// migrations too.
func (s *Scheduler) TryLatchMigration() bool {
	if s.migrationInFlight {
		return false
	}
	s.migrationInFlight = true
	s.lastMigration = s.eng.Now()
	return true
}

// MigrationInFlight reports whether the single-migration latch is held.
func (s *Scheduler) MigrationInFlight() bool { return s.migrationInFlight }

// MigrationDone releases the single-migration latch (called by the
// runtime when the 4-phase protocol finishes).
func (s *Scheduler) MigrationDone() { s.migrationInFlight = false }

func (s *Scheduler) highestLoadActor() *actor.Actor {
	var best *actor.Actor
	for _, a := range s.actors {
		if a.State != actor.Stable || a.PinNIC {
			continue
		}
		if a.ExecStats.Count() == 0 {
			continue
		}
		// ID tie-break: keep the push-migration victim independent of
		// map iteration order (determinism contract).
		if best == nil || a.Load() > best.Load() ||
			(a.Load() == best.Load() && a.ID < best.ID) {
			best = a
		}
	}
	return best
}

// String summarizes scheduler state for debugging.
func (s *Scheduler) String() string {
	f, d := s.CoreModes()
	return fmt.Sprintf("sched{fcfs=%d drr=%d actors=%d runnable=%d backlog=%d}",
		f, d, len(s.actors), len(s.drrRunnable), s.queue.len())
}
