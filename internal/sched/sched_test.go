package sched

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/sim"
)

// harness bundles a scheduler with controllable hooks.
type harness struct {
	eng      *sim.Engine
	s        *Scheduler
	runCost  map[actor.ID]sim.Time
	forwards []actor.Msg
	pushes   []*actor.Actor
	pulls    int
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{eng: sim.NewEngine(1), runCost: map[actor.ID]sim.Time{}}
	hooks := Hooks{
		Run: func(a *actor.Actor, m actor.Msg) sim.Time {
			if c, ok := h.runCost[a.ID]; ok {
				return c
			}
			return sim.Microsecond
		},
		FwdTax:  func(bytes int) sim.Time { return 200 * sim.Nanosecond },
		Forward: func(m actor.Msg) { h.forwards = append(h.forwards, m) },
		Quantum: func(int) sim.Time { return 3 * sim.Microsecond },
		PushToHost: func(a *actor.Actor) {
			h.pushes = append(h.pushes, a)
			// Complete migration instantly: remove and forward mailbox.
			h.s.RemoveActor(a.ID)
			a.State = actor.Clean
			h.s.MigrationDone()
		},
		PullFromHost: func() bool { h.pulls++; return false },
	}
	h.s = New(h.eng, cfg, hooks)
	return h
}

func (h *harness) addActor(id actor.ID, cost sim.Time) *actor.Actor {
	a := &actor.Actor{ID: id}
	h.runCost[id] = cost
	h.s.AddActor(a)
	return a
}

func baseConfig(cores int) Config {
	cfg := DefaultConfig(cores)
	cfg.TailThresh = 0 // disabled unless a test sets it
	cfg.MeanThresh = 0
	return cfg
}

func TestFCFSExecutesAndCounts(t *testing.T) {
	h := newHarness(t, baseConfig(2))
	a := h.addActor(1, 2*sim.Microsecond)
	for i := 0; i < 10; i++ {
		h.s.Arrive(actor.Msg{Dst: 1, WireSize: 512})
	}
	h.eng.Run()
	if h.s.Completed != 10 {
		t.Fatalf("Completed = %d", h.s.Completed)
	}
	if a.Invoked != 10 {
		t.Fatalf("actor invoked %d times", a.Invoked)
	}
	if a.ExecStats.Mean() <= 0 {
		t.Fatal("no sojourn stats recorded")
	}
	// 10 msgs × 2.2µs on 2 cores ≈ 11µs wall.
	if h.eng.Now() > 15*sim.Microsecond || h.eng.Now() < 11*sim.Microsecond {
		t.Fatalf("makespan %v implausible", h.eng.Now())
	}
}

func TestUnownedMessagesForwarded(t *testing.T) {
	h := newHarness(t, baseConfig(1))
	h.s.Arrive(actor.Msg{Dst: 99, WireSize: 64})
	h.eng.Run()
	if len(h.forwards) != 1 || h.s.Forwarded != 1 {
		t.Fatalf("forwards = %d", len(h.forwards))
	}
}

func TestParallelSpeedup(t *testing.T) {
	run := func(cores int) sim.Time {
		h := newHarness(t, baseConfig(cores))
		h.addActor(1, 10*sim.Microsecond)
		for i := 0; i < 40; i++ {
			h.s.Arrive(actor.Msg{Dst: 1})
		}
		h.eng.Run()
		return h.eng.Now()
	}
	t1, t4 := run(1), run(4)
	if t4 >= t1/3 {
		t.Fatalf("4 cores (%v) should be ≈4x faster than 1 (%v)", t4, t1)
	}
}

func TestExclusiveActorNeverConcurrent(t *testing.T) {
	cfg := baseConfig(4)
	h := newHarness(t, cfg)
	a := h.addActor(1, 5*sim.Microsecond)
	a.Exclusive = true
	maxRunning := 0
	h.runCost[1] = 5 * sim.Microsecond
	// Hook into Run via a wrapper: re-create scheduler hooks is complex;
	// instead sample concurrency through the actor's running counter on
	// every event by scheduling probes.
	for i := 0; i < 20; i++ {
		h.s.Arrive(actor.Msg{Dst: 1})
	}
	for at := sim.Time(0); at < 200*sim.Microsecond; at += sim.Microsecond {
		h.eng.At(at, func() {
			if a.Running() > maxRunning {
				maxRunning = a.Running()
			}
		})
	}
	h.eng.Run()
	if maxRunning > 1 {
		t.Fatalf("exclusive actor ran on %d cores concurrently", maxRunning)
	}
	if h.s.Completed != 20 {
		t.Fatalf("Completed = %d", h.s.Completed)
	}
}

func TestSharedActorRunsConcurrently(t *testing.T) {
	h := newHarness(t, baseConfig(4))
	a := h.addActor(1, 5*sim.Microsecond)
	maxRunning := 0
	for i := 0; i < 20; i++ {
		h.s.Arrive(actor.Msg{Dst: 1})
	}
	for at := sim.Time(0); at < 100*sim.Microsecond; at += sim.Microsecond {
		h.eng.At(at, func() {
			if a.Running() > maxRunning {
				maxRunning = a.Running()
			}
		})
	}
	h.eng.Run()
	if maxRunning < 2 {
		t.Fatalf("shared actor should use multiple cores, max = %d", maxRunning)
	}
}

func TestDowngradeOnTailBreach(t *testing.T) {
	cfg := baseConfig(2)
	cfg.TailThresh = 30 // µs
	h := newHarness(t, cfg)
	fast := h.addActor(1, 1*sim.Microsecond)
	slow := h.addActor(2, 60*sim.Microsecond) // blows the tail threshold
	// Spaced arrivals keep queueing low, so per-actor dispersion
	// reflects service-time variance and the slow actor is the victim.
	for i := 0; i < 30; i++ {
		at := sim.Time(i) * 80 * sim.Microsecond
		h.eng.At(at, func() { h.s.Arrive(actor.Msg{Dst: 1}) })
		h.eng.At(at+40*sim.Microsecond, func() { h.s.Arrive(actor.Msg{Dst: 2}) })
	}
	h.eng.Run()
	if h.s.Downgrades == 0 {
		t.Fatal("no downgrade despite tail breach")
	}
	if len(h.pushes) == 0 && !slow.InDRR {
		t.Fatal("slow actor neither in DRR nor migrated")
	}
	if fast.InDRR {
		t.Fatal("low-dispersion actor should stay in FCFS")
	}
	if h.s.CoreMoves == 0 {
		t.Fatal("no core was ever converted to DRR")
	}
}

func TestDRRServesMailboxed(t *testing.T) {
	cfg := baseConfig(2)
	h := newHarness(t, cfg)
	a := h.addActor(1, 2*sim.Microsecond)
	// Force the actor into DRR directly.
	a.InDRR = true
	h.s.drrRunnable = append(h.s.drrRunnable, a)
	h.s.ensureDRRCore()
	for i := 0; i < 8; i++ {
		h.s.Arrive(actor.Msg{Dst: 1})
	}
	h.eng.Run()
	if a.Invoked != 8 {
		t.Fatalf("DRR actor served %d of 8", a.Invoked)
	}
	if h.s.DRRBacklog() != 0 {
		t.Fatal("mailbox not drained")
	}
}

func TestUpgradeRestoresFCFS(t *testing.T) {
	cfg := baseConfig(2)
	cfg.TailThresh = 1000 // high: tail always below (1-α)·thresh → upgrade fires
	h := newHarness(t, cfg)
	a := h.addActor(1, 1*sim.Microsecond)
	a.InDRR = true
	h.s.drrRunnable = append(h.s.drrRunnable, a)
	h.s.ensureDRRCore()
	for i := 0; i < 5; i++ {
		h.s.Arrive(actor.Msg{Dst: 1})
	}
	h.eng.Run()
	if a.InDRR {
		t.Fatal("actor not upgraded despite low tail")
	}
	if h.s.Upgrades == 0 {
		t.Fatal("upgrade counter zero")
	}
	f, d := h.s.CoreModes()
	if d != 0 || f != 2 {
		t.Fatalf("cores after collapse: fcfs=%d drr=%d", f, d)
	}
	// All messages eventually served.
	if a.Invoked != 5 {
		t.Fatalf("served %d of 5", a.Invoked)
	}
}

func TestPushMigrationOnMeanBreach(t *testing.T) {
	cfg := baseConfig(1)
	cfg.MeanThresh = 5 // µs — easily breached by a 30µs actor
	h := newHarness(t, cfg)
	heavy := h.addActor(1, 30*sim.Microsecond)
	for i := 0; i < 20; i++ {
		h.s.Arrive(actor.Msg{Dst: 1})
	}
	h.eng.Run()
	if len(h.pushes) == 0 {
		t.Fatal("no push migration despite mean breach")
	}
	if h.pushes[0] != heavy {
		t.Fatal("wrong actor migrated")
	}
	// After migration the remaining messages are forwarded to the host.
	if len(h.forwards) == 0 {
		t.Fatal("post-migration traffic not forwarded")
	}
}

func TestPullOnLowLoad(t *testing.T) {
	cfg := baseConfig(2)
	cfg.MeanThresh = 1000 // mean stays way below (1-α)·thresh
	h := newHarness(t, cfg)
	h.addActor(1, 1*sim.Microsecond)
	// Spread arrivals past the management monitor period so the pull
	// condition is actually evaluated.
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 50 * sim.Microsecond
		h.eng.At(at, func() { h.s.Arrive(actor.Msg{Dst: 1}) })
	}
	h.eng.Run()
	if h.pulls == 0 {
		t.Fatal("no pull attempt despite low load and idle cores")
	}
}

func TestQThreshMailboxMigration(t *testing.T) {
	cfg := baseConfig(2)
	cfg.QThresh = 4
	h := newHarness(t, cfg)
	a := h.addActor(1, 20*sim.Microsecond)
	a.InDRR = true
	h.s.drrRunnable = append(h.s.drrRunnable, a)
	h.s.ensureDRRCore()
	for i := 0; i < 30; i++ {
		h.s.Arrive(actor.Msg{Dst: 1})
	}
	h.eng.Run()
	if len(h.pushes) == 0 {
		t.Fatal("overloaded DRR mailbox did not trigger migration")
	}
}

func TestPinnedActorNotMigrated(t *testing.T) {
	cfg := baseConfig(1)
	cfg.MeanThresh = 2
	h := newHarness(t, cfg)
	a := h.addActor(1, 30*sim.Microsecond)
	a.PinNIC = true
	for i := 0; i < 10; i++ {
		h.s.Arrive(actor.Msg{Dst: 1})
	}
	h.eng.Run()
	if len(h.pushes) != 0 {
		t.Fatal("pinned actor was migrated")
	}
}

func TestShuffleQueueSteeringAndStealing(t *testing.T) {
	q := newShuffleQueue(4)
	// All messages hash to core 1's queue.
	for i := 0; i < 8; i++ {
		q.push(actor.Msg{FlowID: 1, Kind: actor.Kind(i)})
	}
	// Core 1 gets FIFO order.
	m, ok := q.pop(1)
	if !ok || m.Kind != 0 {
		t.Fatalf("own-queue pop = %v %v", m.Kind, ok)
	}
	// Core 3 steals from the victim's head so the flow stays FIFO: the
	// oldest queued message moves, never a younger one ahead of it.
	m, ok = q.pop(3)
	if !ok || m.Kind != 1 {
		t.Fatalf("steal = %v %v, want kind 1 (victim's head)", m.Kind, ok)
	}
	if q.Steals != 1 {
		t.Fatalf("Steals = %d", q.Steals)
	}
	if q.len() != 6 {
		t.Fatalf("len = %d", q.len())
	}
}

func TestShuffleSchedulerDrainsEverything(t *testing.T) {
	cfg := baseConfig(4)
	cfg.Shuffle = true
	h := newHarness(t, cfg)
	a := h.addActor(1, sim.Microsecond)
	for i := 0; i < 50; i++ {
		h.s.Arrive(actor.Msg{Dst: 1, FlowID: uint64(i % 2)}) // only 2 flows: imbalance
	}
	h.eng.Run()
	if a.Invoked != 50 {
		t.Fatalf("served %d of 50", a.Invoked)
	}
}

func TestUtilizationTracksLoad(t *testing.T) {
	h := newHarness(t, baseConfig(2))
	h.addActor(1, 10*sim.Microsecond)
	for i := 0; i < 10; i++ {
		h.s.Arrive(actor.Msg{Dst: 1})
	}
	h.eng.Run()
	// 10×~10.2µs over 2 cores in ~51µs: both cores ≈100% busy while
	// running. After Run, engine time == makespan so util ≈ 1.
	f, _ := h.s.Utilization()
	if f < 0.8 {
		t.Fatalf("FCFS utilization = %v, want ≈1 under saturation", f)
	}
}

func TestSchedulerValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	ok := func(f func()) (panicked bool) {
		defer func() { panicked = recover() != nil }()
		f()
		return
	}
	if !ok(func() { New(eng, Config{Cores: 0}, Hooks{}) }) {
		t.Error("zero cores accepted")
	}
	if !ok(func() { New(eng, Config{Cores: 1}, Hooks{}) }) {
		t.Error("missing hooks accepted")
	}
}

func TestStringSummary(t *testing.T) {
	h := newHarness(t, baseConfig(2))
	if h.s.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestIOKernelDispatcherServes(t *testing.T) {
	cfg := baseConfig(4)
	cfg.IOKernel = true
	h := newHarness(t, cfg)
	a := h.addActor(1, 2*sim.Microsecond)
	for i := 0; i < 40; i++ {
		h.s.Arrive(actor.Msg{Dst: 1, FlowID: uint64(i)})
	}
	h.eng.Run()
	if a.Invoked != 40 {
		t.Fatalf("served %d of 40 via IOKernel dispatcher", a.Invoked)
	}
	// The dispatcher core never executes actors.
	f, _ := h.s.CoreModes()
	if f != 3 {
		t.Fatalf("FCFS workers = %d, want 3 (one core is the dispatcher)", f)
	}
	for _, c := range h.s.cores {
		if c.mode == Dispatch && c.Executed != 0 {
			t.Fatal("dispatcher executed actor work")
		}
	}
}

func TestIOKernelBalancesWorkers(t *testing.T) {
	cfg := baseConfig(4)
	cfg.IOKernel = true
	h := newHarness(t, cfg)
	h.addActor(1, 5*sim.Microsecond)
	// Several flows: the dispatcher spreads them across workers by queue
	// depth. (A single flow would — correctly — stay pinned to one worker
	// while it has messages pending, to preserve per-flow FIFO.)
	for i := 0; i < 30; i++ {
		h.s.Arrive(actor.Msg{Dst: 1, FlowID: uint64(7 + i%3)})
	}
	h.eng.Run()
	busyWorkers := 0
	for _, c := range h.s.cores {
		if c.mode == FCFS && c.Executed > 0 {
			busyWorkers++
		}
	}
	if busyWorkers < 2 {
		t.Fatalf("dispatcher used %d workers for three flows, want spread", busyWorkers)
	}
}

func TestIOKernelPinsFlowWhilePending(t *testing.T) {
	cfg := baseConfig(4)
	cfg.IOKernel = true
	h := newHarness(t, cfg)
	h.addActor(1, 5*sim.Microsecond)
	// One flow only: while it has messages pending at a worker, every
	// subsequent dispatch must follow to the same worker — spreading a
	// single flow across workers would reorder it.
	for i := 0; i < 30; i++ {
		h.s.Arrive(actor.Msg{Dst: 1, FlowID: 7})
	}
	h.eng.Run()
	busyWorkers := 0
	for _, c := range h.s.cores {
		if c.mode == FCFS && c.Executed > 0 {
			busyWorkers++
		}
	}
	if busyWorkers != 1 {
		t.Fatalf("single flow ran on %d workers, want 1 (flow affinity)", busyWorkers)
	}
}

func TestIOKernelNeedsTwoCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1-core IOKernel accepted")
		}
	}()
	cfg := baseConfig(1)
	cfg.IOKernel = true
	newHarness(t, cfg)
}
