// Package shard implements the consistent-hash router that spreads the
// RKV key space over independent replica groups (one Paxos group per
// shard). The ring is a fixed, sorted slice of 64-bit points — there is
// no map iteration anywhere on the lookup or rebuild paths, so routing
// is deterministic and safe for the simulator's byte-identical
// serial-vs-parallel contract. Each shard owns VNodes points on the
// ring; removing a shard removes only its points, so only ~1/N of the
// key space remaps onto the survivors (the property the scale-out
// failover path relies on).
package shard

import "sort"

// DefaultVNodes is the per-shard virtual-node count. 128 points per
// shard keeps the max/mean arc-length ratio under ~1.25 for up to a few
// dozen shards, which is plenty for the bench sweeps.
const DefaultVNodes = 128

type point struct {
	hash  uint64
	shard int
	vnode int
}

// Ring is a consistent-hash ring over integer shard IDs [0, shards).
type Ring struct {
	points []point
	vnodes int
	shards int // original shard count (IDs), not live count
	live   []bool
	nLive  int
}

// New builds a ring with the given shard count and virtual nodes per
// shard (vnodes ≤ 0 uses DefaultVNodes). Panics on shards < 1.
func New(shards, vnodes int) *Ring {
	if shards < 1 {
		panic("shard: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		points: make([]point, 0, shards*vnodes),
		vnodes: vnodes,
		shards: shards,
		live:   make([]bool, shards),
		nLive:  shards,
	}
	for s := 0; s < shards; s++ {
		r.live[s] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: pointHash(s, v), shard: s, vnode: v})
		}
	}
	sortPoints(r.points)
	return r
}

// sortPoints orders by hash with a (shard, vnode) tie-break so the ring
// layout is a pure function of its inputs.
func sortPoints(pts []point) {
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.vnode < b.vnode
	})
}

// Shards returns the number of shards still on the ring.
func (r *Ring) Shards() int { return r.nLive }

// Size returns the original shard count the ring was built with
// (removed shards keep their IDs; they just own no points).
func (r *Ring) Size() int { return r.shards }

// Live reports whether shard s still owns points on the ring.
func (r *Ring) Live(s int) bool { return s >= 0 && s < r.shards && r.live[s] }

// Lookup returns the shard owning key: the first point clockwise from
// the key's hash.
func (r *Ring) Lookup(key []byte) int { return r.LookupHash(Hash(key)) }

// LookupHash routes a pre-computed key hash.
func (r *Ring) LookupHash(h uint64) int {
	if len(r.points) == 0 {
		panic("shard: lookup on empty ring")
	}
	// First point with hash >= h, wrapping to the start of the ring.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Remove deletes shard s's points: keys it owned redistribute to the
// clockwise successors (≈1/N of the key space), every other key keeps
// its owner. Removing an already-removed shard is a no-op; removing the
// last shard panics.
func (r *Ring) Remove(s int) {
	if s < 0 || s >= r.shards || !r.live[s] {
		return
	}
	if r.nLive == 1 {
		panic("shard: cannot remove the last shard")
	}
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != s {
			kept = append(kept, p)
		}
	}
	r.points = kept
	r.live[s] = false
	r.nLive--
}

// Hash is the key hash: FNV-1a 64 with a splitmix finalizer so short
// sequential keys still spread across the whole ring.
func Hash(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return mix(h)
}

// pointHash places virtual node v of shard s on the ring.
func pointHash(s, v int) uint64 {
	return mix(uint64(s+1)*0x9E3779B97F4A7C15 + uint64(v)*0xBF58476D1CE4E5B9)
}

// mix is the splitmix64 finalizer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
