package shard

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// chiSquare computes Σ (obs-exp)²/exp against a uniform expectation.
func chiSquare(counts []int, total int) float64 {
	exp := float64(total) / float64(len(counts))
	var x2 float64
	for _, c := range counts {
		d := float64(c) - exp
		x2 += d * d / exp
	}
	return x2
}

// Balance under uniform and Zipf(0.99) keys. A consistent-hash ring is
// not a perfect uniform partition — vnode arc lengths vary — so the
// chi-square statistic carries a systematic term ≈ N·Σ(p_i−1/k)²/(1/k)
// on top of the sampling noise. With 128 vnodes per shard the arc-share
// spread is small; the bound below is calibrated generously (an even
// split of N=200k keys over 8 shards has E[χ²] = 7; we allow 0.02·N,
// which only a badly clumped ring would exceed).
func TestRingBalance(t *testing.T) {
	const shards, keys = 8, 200000
	r := New(shards, 0)
	z := workload.NewZipf(sim.NewRand(11), 1_000_000, 0.99)
	cases := []struct {
		name  string
		gen   func(i int) []byte
		bound float64
	}{
		// Distinct uniform keys measure the ring itself: arcs within a few
		// percent of fair, so chi-square stays tiny (0.02·N is ~570× the
		// E[χ²]=7 of a perfect split — only a clumped ring exceeds it).
		{"uniform", func(i int) []byte { return []byte(fmt.Sprintf("k%07d", i)) }, 0.02 * keys},
		// Zipf(0.99) draws repeat hot keys, so wherever the ~6%-mass head
		// key lands shifts one shard's count wholesale; the statistic is
		// dominated by key weights, not ring quality. The generous bound
		// still catches gross imbalance (everything on one shard scores
		// (k−1)·N = 7·N).
		{"zipf99", func(i int) []byte { return []byte(fmt.Sprintf("k%07d", z.Next())) }, 0.15 * keys},
	}
	for _, c := range cases {
		counts := make([]int, shards)
		for i := 0; i < keys; i++ {
			counts[r.Lookup(c.gen(i))]++
		}
		x2 := chiSquare(counts, keys)
		if x2 > c.bound {
			t.Fatalf("%s: chi-square %.1f over bound %.0f (counts %v)", c.name, x2, c.bound, counts)
		}
		name := c.name
		// No shard may be starved or hot beyond 2× its fair share.
		for s, c := range counts {
			share := float64(c) / keys
			if share < 0.5/shards || share > 2.0/shards {
				t.Fatalf("%s: shard %d share %.3f outside [%.3f, %.3f]",
					name, s, share, 0.5/shards, 2.0/shards)
			}
		}
	}
}

// Removing one shard must move only that shard's keys: ≤ (1/N + ε) of
// the key space remaps, and every key that was NOT on the removed shard
// keeps its owner (the consistent-hashing contract).
func TestRingRemapFraction(t *testing.T) {
	const shards, keys = 8, 100000
	r := New(shards, 0)
	before := make([]int, keys)
	for i := 0; i < keys; i++ {
		before[i] = r.Lookup([]byte(fmt.Sprintf("k%07d", i)))
	}
	const victim = 3
	r.Remove(victim)
	if r.Shards() != shards-1 || r.Live(victim) {
		t.Fatalf("Shards()=%d Live(%d)=%v after removal", r.Shards(), victim, r.Live(victim))
	}
	moved := 0
	for i := 0; i < keys; i++ {
		after := r.Lookup([]byte(fmt.Sprintf("k%07d", i)))
		if after == victim {
			t.Fatalf("key %d still routed to removed shard", i)
		}
		if before[i] != after {
			if before[i] != victim {
				t.Fatalf("key %d moved %d→%d though shard %d was removed",
					i, before[i], after, victim)
			}
			moved++
		}
	}
	frac := float64(moved) / keys
	if eps := 0.04; frac > 1.0/shards+eps {
		t.Fatalf("remapped %.3f of keys, want ≤ 1/%d + %.2f", frac, shards, eps)
	}
	if frac < 0.25/shards {
		t.Fatalf("remapped only %.4f of keys; removed shard owned implausibly little", frac)
	}
}

// The ring layout and lookups are pure functions of (shards, vnodes):
// two rings built with the same parameters route identically, and
// removal order of distinct shards commutes.
func TestRingDeterministic(t *testing.T) {
	a, b := New(6, 32), New(6, 32)
	for i := 0; i < 5000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i*7919))
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("rings diverge on %q", k)
		}
	}
	a.Remove(2)
	a.Remove(4)
	b.Remove(4)
	b.Remove(2)
	for i := 0; i < 5000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i*7919))
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("removal order changed routing for %q", k)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	one := New(1, 4)
	if got := one.Lookup([]byte("anything")); got != 0 {
		t.Fatalf("single-shard ring routed to %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("removing the last shard did not panic")
		}
	}()
	one.Remove(0)
}
