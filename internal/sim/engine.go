// Package sim provides a deterministic discrete-event simulation engine.
//
// All iPipe substrates (NIC cores, PCIe DMA engines, network links, host
// cores) run on top of a single Engine. Time is virtual: an Event fires at
// an absolute Time, and the engine executes events in (time, sequence)
// order, so runs are fully reproducible for a fixed seed and schedule.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It deliberately mirrors time.Duration's resolution so model
// parameters written as time.Duration convert losslessly.
type Time int64

// Common conversions.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Duration converts a virtual time span to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time as a duration for readability.
func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a real duration to virtual time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Micros builds a virtual time from floating-point microseconds.
func Micros(us float64) Time { return Time(us * float64(Microsecond)) }

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among events at the same instant
	fn   func()
	dead bool // cancelled
	idx  int  // heap index, -1 when popped
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	e *event
}

// Stop cancels the timer. It reports whether the event had not yet fired.
func (t *Timer) Stop() bool {
	if t == nil || t.e == nil || t.e.dead || t.e.idx == -1 && t.e.fn == nil {
		return false
	}
	fired := t.e.fn == nil
	t.e.dead = true
	return !fired && !t.expired()
}

func (t *Timer) expired() bool { return t.e.fn == nil }

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *Rand
	ran    uint64 // events executed
}

// NewEngine returns an engine at time zero with a deterministic PRNG
// seeded by seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic PRNG.
func (e *Engine) Rand() *Rand { return e.rng }

// Executed reports the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.ran }

// Pending reports the number of scheduled (not yet fired) events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it always indicates a model bug.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{e: ev}
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Defer schedules fn to run at the current instant, after all callbacks
// already queued for this instant. It is the simulation analogue of
// yielding to the scheduler.
func (e *Engine) Defer(fn func()) *Timer { return e.At(e.now, fn) }

// Step executes the next event. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.ran++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock
// to deadline. Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for a span of virtual time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

func (e *Engine) peek() *event {
	for len(e.events) > 0 {
		if e.events[0].dead {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0]
	}
	return nil
}
