// Package sim provides a deterministic discrete-event simulation engine.
//
// All iPipe substrates (NIC cores, PCIe DMA engines, network links, host
// cores) run on top of a single Engine. Time is virtual: an Event fires at
// an absolute Time, and the engine executes events in (time, sequence)
// order, so runs are fully reproducible for a fixed seed and schedule.
//
// The engine is single-threaded by design — determinism comes from the
// total (time, seq) event order. Concurrency in the experiment harness is
// achieved by running many independent Engines, one per sweep point, not
// by sharing one engine across goroutines. Within a single simulation,
// Group (partition.go) shards one topology across several engines and
// advances them conservatively in parallel; each engine still only ever
// runs on one goroutine at a time.
package sim

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It deliberately mirrors time.Duration's resolution so model
// parameters written as time.Duration convert losslessly.
type Time int64

// Common conversions.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Duration converts a virtual time span to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time as a duration for readability.
func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a real duration to virtual time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Micros builds a virtual time from floating-point microseconds.
func Micros(us float64) Time { return Time(us * float64(Microsecond)) }

// Event lifecycle states. An event is pending from At until it either
// fires (stateFired) or is cancelled via Timer.Stop (stateStopped).
// Stopped events stay in the heap and are discarded lazily when they
// reach the top, or in bulk when too many accumulate (see compact).
const (
	statePending uint8 = iota
	stateFired
	stateStopped
)

// event is a scheduled callback. Events are pooled: after firing or
// being discarded they return to the engine's free list and are reused
// by later At/After/Defer calls. gen increments on every recycle so
// stale Timer handles can detect that "their" event is gone.
type event struct {
	at    Time
	seq   uint64 // tie-break: FIFO among events at the same instant
	gen   uint64 // incremented on recycle; guards Timer handles
	fn    func()
	state uint8
}

// Timer is a handle to a scheduled event that can be cancelled. It is a
// small value (no allocation): At/After/Defer return it by value, and
// callers that ignore it pay nothing.
type Timer struct {
	eng *Engine
	e   *event
	gen uint64
}

// Stop cancels the timer. It reports whether the cancellation took
// effect, i.e. the event was still pending: false if the event already
// fired, was already stopped (double-stop), or the handle is zero.
func (t Timer) Stop() bool {
	if t.e == nil || t.gen != t.e.gen || t.e.state != statePending {
		return false
	}
	t.e.state = stateStopped
	t.e.fn = nil // release the closure now; the shell stays heaped
	t.eng.dead++
	t.eng.maybeCompact()
	return true
}

// Pending reports whether the event has neither fired nor been stopped.
func (t Timer) Pending() bool {
	return t.e != nil && t.gen == t.e.gen && t.e.state == statePending
}

// executedTotal counts events executed across all engines in the
// process. Engines flush into it at the end of Run/RunUntil (not per
// event — this must not touch the hot path), so it is a cheap process-
// wide progress meter for the bench harness's events/sec reporting.
var executedTotal atomic.Uint64

// TotalExecuted returns the process-wide count of executed events,
// accumulated when engines finish a Run/RunUntil call.
func TotalExecuted() uint64 { return executedTotal.Load() }

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	q       eventQueue
	dead    int      // stopped events still occupying heap slots
	free    []*event // recycled event shells for reuse
	rng     *Rand
	ran     uint64 // events executed
	flushed uint64 // portion of ran already added to executedTotal
}

// NewEngine returns an engine at time zero with a deterministic PRNG
// seeded by seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic PRNG.
func (e *Engine) Rand() *Rand { return e.rng }

// Executed reports the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.ran }

// Pending reports the number of scheduled (not yet fired) events,
// excluding cancelled ones awaiting cleanup.
func (e *Engine) Pending() int { return len(e.q) - e.dead }

// alloc takes an event shell from the free list, or makes one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// maxFreeEvents bounds the free list. A burst of short-lived events
// (message trains, retry storms) can momentarily inflate the heap to
// hundreds of thousands of shells; without a cap every one of them
// would stay pinned on the free list for the rest of the run. Beyond
// the cap, shells are released to the GC instead. Steady-state churn
// far below the cap still allocates nothing (see BenchmarkEnginePool*).
const maxFreeEvents = 4096

// recycle invalidates outstanding Timer handles for ev and returns it to
// the free list (or drops it once the list is full).
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	if len(e.free) >= maxFreeEvents {
		return
	}
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it always indicates a model bug.
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn, ev.state = t, e.seq, fn, statePending
	e.seq++
	e.q.push(ev)
	return Timer{eng: e, e: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Time, fn func()) Timer {
	return e.At(e.now+d, fn)
}

// Defer schedules fn to run at the current instant, after all callbacks
// already queued for this instant. It is the simulation analogue of
// yielding to the scheduler.
func (e *Engine) Defer(fn func()) Timer { return e.At(e.now, fn) }

// Step executes the next event. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.q) > 0 {
		ev := e.q.pop()
		if ev.state == stateStopped {
			e.dead--
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.state = stateFired
		e.recycle(ev) // recycled before fn so chains reuse the shell
		e.ran++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for len(e.q) > 0 {
		ev := e.q.pop()
		if ev.state == stateStopped {
			e.dead--
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.state = stateFired
		e.recycle(ev)
		e.ran++
		fn()
	}
	e.flushExecuted()
}

// RunUntil executes events with time ≤ deadline (including events that
// callbacks schedule at or before the deadline while it runs), then
// advances the clock to deadline. Events beyond it remain pending.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.q) > 0 {
		top := e.q[0]
		if top.state == stateStopped {
			e.q.pop()
			e.dead--
			e.recycle(top)
			continue
		}
		if top.at > deadline {
			break
		}
		e.q.pop()
		e.now = top.at
		fn := top.fn
		top.state = stateFired
		e.recycle(top)
		e.ran++
		fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	e.flushExecuted()
}

// RunFor executes events for a span of virtual time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// nextTime returns the time of the earliest pending event, or MaxTime
// when none remain. Cancelled events at the top are discarded on the
// way, so the bound is exact. The partitioned run loop (Group) uses it
// to compute the global safe horizon.
func (e *Engine) nextTime() Time {
	for len(e.q) > 0 {
		top := e.q[0]
		if top.state != stateStopped {
			return top.at
		}
		e.q.pop()
		e.dead--
		e.recycle(top)
	}
	return MaxTime
}

// runWindow executes every event strictly before limit, including
// events that callbacks schedule inside the window while it runs. The
// clock is left at the last executed event (not advanced to limit):
// windows are a synchronization construct, not a time span, and the
// next window's events may still land between now and limit. Executed
// counts flush to the process-wide meter every window so progress
// reporting stays live during long partitioned runs.
func (e *Engine) runWindow(limit Time) {
	for len(e.q) > 0 {
		top := e.q[0]
		if top.state == stateStopped {
			e.q.pop()
			e.dead--
			e.recycle(top)
			continue
		}
		if top.at >= limit {
			break
		}
		e.q.pop()
		e.now = top.at
		fn := top.fn
		top.state = stateFired
		e.recycle(top)
		e.ran++
		fn()
	}
	e.flushExecuted()
}

// flushExecuted publishes this engine's progress to the process-wide
// counter. Called at the end of Run/RunUntil, never per event.
func (e *Engine) flushExecuted() {
	if d := e.ran - e.flushed; d > 0 {
		executedTotal.Add(d)
		e.flushed = e.ran
	}
}

// maybeCompact bounds the garbage cancelled events can pin in the heap:
// cleanup is lazy (discard at pop) until stopped events are both
// numerous (>64) and the majority of the heap, then one O(n) sweep
// removes them all. Amortized cost per Stop stays O(1); the heap never
// holds more than ~2× the live events.
func (e *Engine) maybeCompact() {
	if e.dead > 64 && e.dead*2 > len(e.q) {
		e.compact()
	}
}

func (e *Engine) compact() {
	live := e.q[:0]
	for _, ev := range e.q {
		if ev.state == stateStopped {
			e.recycle(ev)
		} else {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(e.q); i++ {
		e.q[i] = nil
	}
	e.q = live
	e.q.reheap()
	e.dead = 0
}
