package sim

import "testing"

// BenchmarkEngineEventsPerSec measures raw event throughput on the hot
// path every substrate shares: schedule → pop → fire. A fixed fan of
// self-rescheduling callbacks keeps the queue at a realistic depth
// (hundreds of pending events) so heap reshuffling cost is included.
func BenchmarkEngineEventsPerSec(b *testing.B) {
	const fan = 256 // concurrent timer chains ≈ pending-queue depth
	e := NewEngine(1)
	remaining := b.N
	var tick func()
	tick = func() {
		remaining--
		if remaining > 0 {
			e.After(Time(1+e.rng.Intn(1000)), tick)
		}
	}
	for i := 0; i < fan && i < b.N; i++ {
		e.After(Time(1+e.rng.Intn(1000)), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineScheduleFire exercises the one-shot pattern (At with an
// immediately-consumed deadline) that pktgen-style drivers use when they
// pre-schedule a whole arrival schedule.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for n := 0; n < b.N; n += batch {
		for i := 0; i < batch; i++ {
			e.At(e.Now()+Time(i), fn)
		}
		e.Run()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineTimerStop measures the cancel path: half the scheduled
// timers are stopped before firing, as retransmit/watchdog timers are in
// the protocol models.
func BenchmarkEngineTimerStop(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for n := 0; n < b.N; n += batch {
		timers := make([]Timer, 0, batch/2)
		for i := 0; i < batch; i++ {
			tm := e.At(e.Now()+Time(i), fn)
			if i%2 == 0 {
				timers = append(timers, tm)
			}
		}
		for i := range timers {
			timers[i].Stop()
		}
		e.Run()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
