package sim

import "testing"

// --- Timer.Stop state machine -------------------------------------------

func TestTimerStopBeforeFire(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(10, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending right after At")
	}
	if !tm.Stop() {
		t.Fatal("Stop before firing should report true")
	}
	if tm.Pending() {
		t.Fatal("stopped timer still pending")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Now() != 0 {
		t.Fatalf("cancelled event advanced the clock to %v", e.Now())
	}
}

func TestTimerStopAfterFireReportsFalse(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(10, func() {})
	e.Run()
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
}

func TestTimerDoubleStop(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(10, func() {})
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop after drain should report false")
	}
}

func TestTimerZeroValueStop(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero-value Stop should report false")
	}
	if tm.Pending() {
		t.Fatal("zero-value timer pending")
	}
}

func TestTimerStopDuringOwnCallback(t *testing.T) {
	e := NewEngine(1)
	var tm Timer
	stopped := true
	tm = e.At(10, func() { stopped = tm.Stop() })
	e.Run()
	if stopped {
		t.Fatal("Stop from inside the firing callback should report false")
	}
}

// TestTimerStaleHandleAfterReuse pins the pool-safety property: once an
// event shell is recycled into a new timer, the old handle must be inert
// even though it points at the same shell.
func TestTimerStaleHandleAfterReuse(t *testing.T) {
	e := NewEngine(1)
	old := e.At(5, func() {})
	e.Run() // fires; shell returns to the free list
	fired := false
	fresh := e.At(10, func() { fired = true }) // reuses the shell
	if old.e != fresh.e {
		t.Skip("allocator did not reuse the shell; property not exercised")
	}
	if old.Stop() {
		t.Fatal("stale handle cancelled someone else's event")
	}
	e.Run()
	if !fired {
		t.Fatal("fresh event did not fire")
	}
}

// --- RunUntil / RunFor edge cases ---------------------------------------

func TestRunUntilDeadlineExactlyOnEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(100, func() { fired = true })
	e.RunUntil(100)
	if !fired {
		t.Fatal("event exactly at the deadline must fire")
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(250)
	if e.Now() != 250 {
		t.Fatalf("Now = %v, want 250", e.Now())
	}
	e.RunFor(50)
	if e.Now() != 300 {
		t.Fatalf("Now = %v, want 300", e.Now())
	}
	// A later deadline in the past of Now must not move the clock back.
	e.RunUntil(100)
	if e.Now() != 300 {
		t.Fatalf("RunUntil moved the clock backwards to %v", e.Now())
	}
}

func TestRunUntilFiresEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })   // 15 ≤ 20
		e.At(20, func() { fired = append(fired, e.Now()) })     // == deadline
		e.At(21, func() { fired = append(fired, e.Now()) })     // beyond
	})
	e.RunUntil(20)
	want := []Time{10, 15, 20}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (the post-deadline event)", e.Pending())
	}
	e.Run()
	if len(fired) != 4 || fired[3] != 21 {
		t.Fatalf("post-deadline event mishandled: %v", fired)
	}
}

// --- pooling / lazy cleanup ---------------------------------------------

// TestEnginePoolReuse checks that a schedule→fire→schedule chain stops
// allocating event shells after warm-up.
func TestEnginePoolReuse(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 100; i++ {
		e.At(Time(i), fn)
	}
	e.Run()
	if got := len(e.free); got != 100 {
		t.Fatalf("free list holds %d shells, want 100", got)
	}
	for i := 0; i < 100; i++ {
		e.After(Time(i+1), fn)
	}
	if got := len(e.free); got != 0 {
		t.Fatalf("free list holds %d shells after reuse, want 0", got)
	}
	e.Run()
}

// TestEngineCompaction floods the heap with cancelled timers and checks
// that (a) the bound kicks in, (b) survivors still fire in exact order.
func TestEngineCompaction(t *testing.T) {
	e := NewEngine(1)
	var got []int
	var timers []Timer
	for i := 0; i < 10000; i++ {
		i := i
		tm := e.At(Time(10000-i), func() { got = append(got, 10000-i) })
		if i%2 == 0 {
			timers = append(timers, tm)
		}
	}
	for _, tm := range timers {
		if !tm.Stop() {
			t.Fatal("Stop on pending timer reported false")
		}
	}
	// The heap must have been compacted well below live+dead.
	if len(e.q) > e.Pending()*2+64 {
		t.Fatalf("heap holds %d slots for %d live events — compaction missing", len(e.q), e.Pending())
	}
	e.Run()
	if len(got) != 5000 {
		t.Fatalf("fired %d events, want 5000", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("events out of order after compaction: %d then %d", got[i-1], got[i])
		}
	}
}

// TestEngineOrderingMatchesReference replays a randomized schedule with
// cancellations on the engine and on a naive sorted-list reference, and
// requires identical firing orders — the determinism contract the 4-ary
// heap must preserve bit-for-bit.
func TestEngineOrderingMatchesReference(t *testing.T) {
	type ref struct {
		at   Time
		id   int
		dead bool
	}
	rnd := NewRand(99)
	e := NewEngine(1)
	var refs []*ref
	var gotOrder, wantOrder []int
	var timers []Timer
	for i := 0; i < 3000; i++ {
		i := i
		at := Time(rnd.Intn(500))
		r := &ref{at: at, id: i}
		refs = append(refs, r)
		timers = append(timers, e.At(at, func() { gotOrder = append(gotOrder, i) }))
	}
	for i := 0; i < 3000; i += 3 {
		refs[i].dead = true
		timers[i].Stop()
	}
	// Reference order: stable sort by (at, insertion index).
	for at := Time(0); at < 500; at++ {
		for _, r := range refs {
			if !r.dead && r.at == at {
				wantOrder = append(wantOrder, r.id)
			}
		}
	}
	e.Run()
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("fired %d, want %d", len(gotOrder), len(wantOrder))
	}
	for i := range wantOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("order diverges at %d: got %d want %d", i, gotOrder[i], wantOrder[i])
		}
	}
}
