package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
		e.Defer(func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 3 || fired[0] != 10 || fired[1] != 10 || fired[2] != 15 {
		t.Fatalf("fired = %v, want [10 10 15]", fired)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := Time(1); i <= 10; i++ {
		e.At(i*100, func() { count++ })
	}
	e.RunUntil(500)
	if count != 5 {
		t.Fatalf("count after RunUntil(500) = %d, want 5", count)
	}
	if e.Now() != 500 {
		t.Fatalf("Now = %v, want 500", e.Now())
	}
	e.RunFor(500)
	if count != 10 {
		t.Fatalf("count after RunFor(500) = %d, want 10", count)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop before firing should report true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	fired2 := false
	e.At(20, func() { fired2 = true })
	e.Run()
	if !fired2 {
		t.Fatal("subsequent event did not fire")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(10, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
}

func TestTimeConversions(t *testing.T) {
	if Micros(2.5) != 2500*Nanosecond {
		t.Fatalf("Micros(2.5) = %v", Micros(2.5))
	}
	if FromDuration(3*time.Microsecond) != 3*Microsecond {
		t.Fatal("FromDuration mismatch")
	}
	if got := (1500 * Microsecond).Micros(); got != 1500 {
		t.Fatalf("Micros() = %v", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds() = %v", got)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := NewEngine(42)
		var trace []uint64
		var tick func()
		tick = func() {
			trace = append(trace, e.Rand().Uint64())
			if len(trace) < 100 {
				e.After(Time(1+e.Rand().Intn(50)), tick)
			}
		}
		e.After(1, tick)
		e.Run()
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at step %d", i)
		}
	}
}

func TestRandDistributions(t *testing.T) {
	r := NewRand(7)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	mean := sum / n
	if mean < 9.8 || mean > 10.2 {
		t.Fatalf("Exp mean = %v, want ≈10", mean)
	}
	sum = 0
	var sq float64
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sq += v * v
	}
	mean = sum / n
	variance := sq/n - mean*mean
	if mean < 4.9 || mean > 5.1 {
		t.Fatalf("Normal mean = %v, want ≈5", mean)
	}
	if variance < 3.8 || variance > 4.2 {
		t.Fatalf("Normal variance = %v, want ≈4", variance)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(3)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical values", same)
	}
}

func TestStationFIFOSingleServer(t *testing.T) {
	e := NewEngine(1)
	st := NewStation(e, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		st.Submit(&Job{Service: 10, Done: func(_, _, f Time) { finish = append(finish, f) }})
	}
	e.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if st.Completed() != 3 {
		t.Fatalf("Completed = %d", st.Completed())
	}
}

func TestStationParallelServers(t *testing.T) {
	e := NewEngine(1)
	st := NewStation(e, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		st.Submit(&Job{Service: 10, Done: func(_, _, f Time) { finish = append(finish, f) }})
	}
	e.Run()
	// Two in parallel finish at 10, next two at 20.
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestStationQueueTimes(t *testing.T) {
	e := NewEngine(1)
	st := NewStation(e, 1)
	var waited Time
	st.Submit(&Job{Service: 100})
	st.Submit(&Job{Service: 1, Done: func(enq, start, _ Time) { waited = start - enq }})
	e.Run()
	if waited != 100 {
		t.Fatalf("second job waited %v, want 100", waited)
	}
}

func TestStationUtilization(t *testing.T) {
	e := NewEngine(1)
	st := NewStation(e, 1)
	st.Submit(&Job{Service: 50})
	e.RunUntil(100)
	u := st.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ≈0.5", u)
	}
}

func TestStationMaxQueue(t *testing.T) {
	e := NewEngine(1)
	st := NewStation(e, 1)
	for i := 0; i < 5; i++ {
		st.Submit(&Job{Service: 1})
	}
	if st.MaxQueue() != 4 {
		t.Fatalf("MaxQueue = %d, want 4", st.MaxQueue())
	}
	e.Run()
	if st.QueueLen() != 0 || st.InService() != 0 {
		t.Fatal("station not drained")
	}
}
