package sim

import "testing"

// TestFreeListBounded: a burst far larger than the cap must not pin
// every shell on the free list for the rest of the run.
func TestFreeListBounded(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 4*maxFreeEvents; i++ {
		e.At(Time(i), fn)
	}
	e.Run()
	if got := len(e.free); got > maxFreeEvents {
		t.Fatalf("free list holds %d shells after burst, cap is %d", got, maxFreeEvents)
	}
	// Steady churn below the cap still reuses shells: no growth.
	before := len(e.free)
	for i := 0; i < 1000; i++ {
		e.After(1, fn)
		e.Step()
	}
	if got := len(e.free); got != before {
		t.Fatalf("free list drifted from %d to %d under steady churn", before, got)
	}
}

// TestFreeListSteadyStateNoAlloc: once warmed, the schedule→fire cycle
// must not allocate — the pool's entire purpose.
func TestFreeListSteadyStateNoAlloc(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the pool and the heap slice
		e.After(1, fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, fn)
		e.Step()
	})
	if allocs > 0 {
		t.Fatalf("steady-state schedule/fire allocates %.1f objects per op", allocs)
	}
}

// BenchmarkEngineSteadyState measures the post-burst steady state the
// free-list bound protects: schedule→fire churn with a warm pool.
func BenchmarkEngineSteadyState(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 4*maxFreeEvents; i++ { // burst, then drain
		e.At(Time(i), fn)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		e.Step()
	}
}
