package sim

// Conservative parallel discrete-event simulation (PDES).
//
// A Group shards one simulation across several Engines ("partitions"),
// typically one per simulated node or group of nodes. Partitions
// advance concurrently inside bounded windows: every round, the group
// computes the earliest pending event time T across all partitions
// (heaps and cross-partition inboxes alike) and lets every partition
// execute events strictly before T + lookahead. Lookahead is the
// guaranteed minimum latency of any cross-partition interaction — for
// the netsim topology, the propagation + switch-fabric floor of the
// fastest link — so no event executed in a window can schedule work on
// another partition inside that same window. This is the classic
// window-based conservative protocol (the degenerate, all-to-all form
// of Chandy–Misra–Bryant null messages: the barrier is one implicit
// null message at time T+lookahead from everyone to everyone).
//
// Determinism: the window structure is a pure function of simulation
// state — T depends only on pending events, never on wall-clock or
// goroutine interleaving — and partitions share no mutable state, so a
// run with W workers executes exactly the events a run with 1 worker
// does, in the same per-partition order. Cross-partition events carry a
// (time, source partition, source sequence) stamp and are folded into
// the destination's heap in that order at window start, which pins the
// destination-side seq assignment regardless of arrival interleaving —
// the "deterministic seq-merge rule". Each partition seeds its own PRNG
// stream from the group seed, so random draws are partition-local and
// unaffected by scheduling.

import (
	"fmt"
	"sort"
	"sync"
)

// goldenGamma is the splitmix64 increment; partition i derives its seed
// as seed + i·goldenGamma, so partition 0 matches a classic single
// engine built with NewEngine(seed).
const goldenGamma = 0x9e3779b97f4a7c15

// xevent is a cross-partition event in flight between two engines. The
// (at, src, seq) triple totally orders inbox contents, making the
// merge into the destination heap deterministic.
type xevent struct {
	at  Time
	src int32
	seq uint64
	fn  func()
}

// inbox buffers events injected into a partition by the others. It is
// the only synchronized structure in the group; the event hot path
// (heap push/pop, execution) never takes a lock. The mutex is touched
// once per cross-partition message and once per window drain — both
// orders of magnitude rarer than event execution.
type inbox struct {
	mu  sync.Mutex
	buf []xevent
}

// take removes and returns the buffered events.
func (ib *inbox) take() []xevent {
	ib.mu.Lock()
	evs := ib.buf
	ib.buf = nil
	ib.mu.Unlock()
	return evs
}

// Group is a set of engines advancing one simulation together. Build
// with NewGroup, attach one partition's models to each Engine(i), route
// every cross-partition interaction through Inject, then drive the
// whole group with RunUntil.
type Group struct {
	engs    []*Engine
	inboxes []inbox
	// xseq stamps outbound cross-partition events per source partition.
	// Entry i is only ever touched by the goroutine executing partition
	// i's window, so no synchronization is needed.
	xseq      []uint64
	lookahead Time
	rounds    uint64

	// onRound hooks run on the coordinator after each round's windows
	// complete (and before the next drain), with the round's window
	// limit. Every partition has executed exactly its events strictly
	// before the limit at that point, so hooks observe a consistent
	// cross-partition cut; the WaitGroup barrier orders their reads
	// after all window writes. The observability layer samples metrics
	// here instead of scheduling engine events, which would perturb the
	// window structure.
	onRound []func(limit Time)

	// limit is the current window bound, written by the coordinator
	// between rounds and read by workers during them (the work channel
	// send/receive pair orders the accesses).
	limit Time

	// barriers is the coordinator-side action queue (see AtBarrier):
	// cluster-wide mutations that run between conservative windows, when
	// no partition is mid-window and every inbox is drained. floor is
	// the commit point — every event strictly before it has executed —
	// so a new action before the floor is a model bug and panics. bseq
	// totally orders same-time actions by registration.
	barriers []barrierAction
	bseq     uint64
	floor    Time

	// deferred holds window-boundary actions registered from *inside*
	// window execution (see DeferBarrier): entry p is appended only by
	// the goroutine running partition p's window and promoted to the
	// barrier queue by the coordinator between rounds, in partition
	// order — the same single-writer-per-slot pattern as xseq.
	deferred [][]func()
}

// barrierAction is one queued window-boundary mutation.
type barrierAction struct {
	at  Time
	seq uint64
	fn  func()
}

// NewGroup creates n partitions. Partition i's PRNG stream is seeded
// seed + i·2⁶⁴/φ, so partition 0 reproduces NewEngine(seed) exactly and
// the streams are mutually decorrelated. The group starts with no
// lookahead; the topology layer must establish one (TightenLookahead)
// before a multi-partition run.
func NewGroup(seed uint64, n int) *Group {
	if n < 1 {
		n = 1
	}
	g := &Group{
		engs:     make([]*Engine, n),
		inboxes:  make([]inbox, n),
		xseq:     make([]uint64, n),
		deferred: make([][]func(), n),
	}
	for i := range g.engs {
		g.engs[i] = NewEngine(seed + uint64(i)*goldenGamma)
	}
	return g
}

// Partitions returns the number of partitions.
func (g *Group) Partitions() int { return len(g.engs) }

// Engine returns partition i's engine.
func (g *Group) Engine(i int) *Engine { return g.engs[i] }

// Lookahead returns the current synchronization lookahead.
func (g *Group) Lookahead() Time { return g.lookahead }

// TightenLookahead lowers the group lookahead to l if it is currently
// larger (or unset). Every layer that can carry a cross-partition
// interaction calls this with its guaranteed minimum latency; the group
// keeps the floor. l must be positive — a zero-latency cross-partition
// path makes conservative parallel execution impossible.
func (g *Group) TightenLookahead(l Time) {
	if l <= 0 {
		panic("sim: lookahead must be positive")
	}
	if g.lookahead == 0 || l < g.lookahead {
		g.lookahead = l
	}
}

// Rounds returns the number of synchronization windows executed.
func (g *Group) Rounds() uint64 { return g.rounds }

// OnRound registers a coordinator hook invoked after each round's
// windows complete, with the round's window limit. Hooks run between
// rounds, never concurrently with window execution. Observability
// hooks must stay read-only with respect to simulation state — they
// must not schedule events, which would change the window structure
// and perturb results. Coordinator-side *maintenance* mutations (e.g.
// draining deferred watchdog kills) are permitted because their effect
// is a pure function of the round structure, which is itself identical
// at any worker count; they still must not touch state a window could
// be reading, since hooks and windows never overlap but two hooks'
// writes are ordered only by registration. Register before RunUntil.
func (g *Group) OnRound(fn func(limit Time)) {
	if fn == nil {
		return
	}
	g.onRound = append(g.onRound, fn)
}

// AtBarrier schedules fn to run on the coordinator at virtual time at,
// between conservative windows: when it runs, every partition has
// executed exactly the events strictly before at, every inbox is
// drained, and no window goroutine is live — so fn may mutate
// cluster-wide shared state (network loss tables, blocked-link maps,
// node up/down flags) race-free and deterministically at any worker
// count. Actions at the same time run in registration order, and run
// *before* any simulation event at that same timestamp (the window
// limit is capped at the earliest pending barrier time). Partition
// clocks are normalized to at-1 first, so fn may schedule follow-on
// engine events at or after at, and may chain further AtBarrier calls
// at ≥ at.
//
// Call AtBarrier before RunUntil or from coordinator context (another
// barrier action, an OnRound hook) — never from inside window
// execution, where it would race on the queue. Scheduling an action
// before the group's commit floor (a window already executed past it)
// panics, mirroring Engine.At on past times. Actions past the RunUntil
// deadline stay queued for a later run.
func (g *Group) AtBarrier(at Time, fn func()) {
	if fn == nil {
		panic("sim: nil barrier action")
	}
	if at < g.floor {
		panic(fmt.Sprintf("sim: barrier action at %v is in the past (group floor %v)", at, g.floor))
	}
	g.bseq++
	g.barriers = append(g.barriers, barrierAction{at: at, seq: g.bseq, fn: fn})
}

// DeferBarrier queues fn to run at the next window boundary, callable
// from *inside* partition part's window execution — the one context
// AtBarrier forbids. This is how a mid-window event hands a
// cluster-visible mutation (an actor-table rewrite, a migration
// commit) to the coordinator: the fn is promoted to an AtBarrier
// action at the window's limit when the round completes, so it runs
// with no window in flight and every inbox drained, in a fixed order —
// partition, then registration — that is a pure function of the round
// structure and therefore identical at any worker count.
//
// On a single-partition group fn runs inline: there are no concurrent
// readers to defer around, matching the classic-cluster path where the
// same mutation commits immediately.
func (g *Group) DeferBarrier(part int, fn func()) {
	if fn == nil {
		panic("sim: nil deferred barrier action")
	}
	if len(g.engs) == 1 {
		fn()
		return
	}
	g.deferred[part] = append(g.deferred[part], fn)
}

// promoteDeferred moves window-registered deferrals onto the barrier
// queue at the completed round's limit. Runs on the coordinator after
// the round's windows complete (the pool barrier orders the reads
// after the window writes); the barrier branch of the next loop
// iteration executes them — no pending event can precede the limit, so
// the actions observe exactly the pre-limit state.
func (g *Group) promoteDeferred(at Time) {
	for p := range g.deferred {
		for _, fn := range g.deferred[p] {
			g.AtBarrier(at, fn)
		}
		g.deferred[p] = g.deferred[p][:0]
	}
}

// nextBarrier returns the earliest queued barrier time, MaxTime if none.
func (g *Group) nextBarrier() Time {
	b := MaxTime
	for i := range g.barriers {
		if g.barriers[i].at < b {
			b = g.barriers[i].at
		}
	}
	return b
}

// runBarrierActions pops and runs every action queued at exactly time
// at, in registration order; actions chained at the same time by a
// running action are picked up in the same pass.
func (g *Group) runBarrierActions(at Time) {
	for {
		best := -1
		for i := range g.barriers {
			if g.barriers[i].at == at && (best < 0 || g.barriers[i].seq < g.barriers[best].seq) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		fn := g.barriers[best].fn
		g.barriers = append(g.barriers[:best], g.barriers[best+1:]...)
		fn()
	}
}

// Crossed returns the number of cross-partition events injected. Only
// meaningful between rounds (it reads the per-source stamps without
// synchronization).
func (g *Group) Crossed() uint64 {
	var n uint64
	for _, s := range g.xseq {
		n += s
	}
	return n
}

// ExecutedEvents sums executed-event counts across partitions.
func (g *Group) ExecutedEvents() uint64 {
	var n uint64
	for _, e := range g.engs {
		n += e.Executed()
	}
	return n
}

// Inject schedules fn at absolute time at on partition dst, from code
// currently executing on partition src. Same-partition injects are
// plain At calls. Cross-partition injects must respect the lookahead
// contract — at ≥ src's now + lookahead — which netsim's latency floor
// guarantees by construction; violating it means the destination may
// already have executed past at, so it panics loudly instead of
// corrupting the timeline.
//
// The returned value is the (src-local) sequence stamp assigned to a
// cross-partition event — the seq of the deterministic (at, src, seq)
// merge order — or 0 for a same-partition inject. The tracing layer
// annotates handoff spans with it so the merged artifact can pair the
// two halves of every crossing.
func (g *Group) Inject(src, dst int, at Time, fn func()) uint64 {
	if src == dst {
		g.engs[src].At(at, fn)
		return 0
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	if now := g.engs[src].now; at < now+g.lookahead {
		panic(fmt.Sprintf("sim: cross-partition event at %v from partition %d (now %v) violates lookahead %v",
			at, src, now, g.lookahead))
	}
	g.xseq[src]++
	x := xevent{at: at, src: int32(src), seq: g.xseq[src], fn: fn}
	ib := &g.inboxes[dst]
	ib.mu.Lock()
	ib.buf = append(ib.buf, x)
	ib.mu.Unlock()
	return x.seq
}

// drain folds the partition's inbox into its heap. It runs on the
// coordinator between rounds — never concurrently with window
// execution — so a batch always holds exactly the events injected in
// prior rounds; draining from inside a window would let batch contents
// depend on worker timing, and the seq assignment with them. Within a
// batch, events are sorted by (at, src, seq) so the local seq order —
// and therefore execution order among simultaneous events — is a pure
// function of the traffic, not of which source goroutine appended
// first.
func (g *Group) drain(i int) {
	evs := g.inboxes[i].take()
	if len(evs) == 0 {
		return
	}
	sort.Slice(evs, func(a, b int) bool {
		x, y := &evs[a], &evs[b]
		if x.at != y.at {
			return x.at < y.at
		}
		if x.src != y.src {
			return x.src < y.src
		}
		return x.seq < y.seq
	})
	e := g.engs[i]
	for k := range evs {
		e.At(evs[k].at, evs[k].fn)
	}
}

// runWindow executes partition i's share of the current window (the
// inbox was already drained by the coordinator).
func (g *Group) runWindow(i int) {
	g.engs[i].runWindow(g.limit)
}

// Run drives the group until every partition drains.
func (g *Group) Run(workers int) { g.RunUntil(MaxTime, workers) }

// RunUntil advances the whole group until no pending event (in any heap
// or inbox) is at or before deadline, then normalizes every partition's
// clock to the deadline — the partitioned analogue of Engine.RunUntil.
// workers bounds the goroutines executing windows; 1 (or a single
// partition) runs everything on the caller's goroutine with identical
// results.
func (g *Group) RunUntil(deadline Time, workers int) {
	if len(g.engs) == 1 {
		// Degenerate group: no windows, but barrier actions keep their
		// ordering contract — run events strictly before each action
		// time, then the action, then continue.
		e := g.engs[0]
		for {
			B := g.nextBarrier()
			if B > deadline || B == MaxTime {
				break
			}
			if B > 0 {
				e.RunUntil(B - 1)
			}
			g.floor = B
			g.runBarrierActions(B)
		}
		e.RunUntil(deadline)
		g.bumpFloor(deadline)
		return
	}
	if g.lookahead <= 0 {
		panic("sim: multi-partition run requires a lookahead (no cross-partition latency floor established)")
	}
	if workers > len(g.engs) {
		workers = len(g.engs)
	}
	var pool *windowPool
	if workers > 1 {
		pool = g.startPool(workers)
		defer pool.stop()
	}
	for {
		// Fold last round's cross-partition traffic into the heaps, in
		// partition order, so every batch — and every seq assignment —
		// is fixed by the round structure alone.
		for i := range g.engs {
			g.drain(i)
		}
		// Safe horizon: the earliest event anywhere. Nothing executed
		// this round can create work before T + lookahead, so every
		// partition may run [.., T+lookahead) without coordination.
		T := MaxTime
		for i := range g.engs {
			if t := g.engs[i].nextTime(); t < T {
				T = t
			}
		}
		// Window-boundary barrier actions: the earliest queued action is
		// due once no pending event precedes it — prior windows were
		// capped at the barrier time, so every partition has executed
		// exactly the events strictly before it. Clocks are normalized
		// to B-1 first (executes nothing: no event is before B) so
		// actions observe a consistent Now and may schedule follow-on
		// events at or after B.
		if B := g.nextBarrier(); B != MaxTime && B <= deadline && B <= T {
			if B > 0 {
				for _, e := range g.engs {
					e.RunUntil(B - 1)
				}
			}
			g.floor = B
			g.runBarrierActions(B)
			continue // actions may add events, actions, or inbox traffic
		}
		if T > deadline || T == MaxTime {
			break
		}
		limit := T + g.lookahead
		if limit < T {
			limit = MaxTime // overflow saturation
		}
		if deadline < MaxTime && limit > deadline+1 {
			// Past the deadline the window bound is irrelevant; capping
			// keeps post-deadline events pending, like Engine.RunUntil.
			limit = deadline + 1
		}
		if B := g.nextBarrier(); limit > B {
			// Nobody may execute at or past a pending barrier action
			// before it runs. B > T here, so the window still advances.
			limit = B
		}
		g.limit = limit
		g.rounds++
		if pool != nil {
			pool.runRound()
		} else {
			for i := range g.engs {
				g.runWindow(i)
			}
		}
		if limit > g.floor {
			g.floor = limit
		}
		g.promoteDeferred(limit)
		for _, fn := range g.onRound {
			fn(limit)
		}
	}
	// Normalize clocks and flush executed counters; every remaining
	// event is past the deadline, so this executes nothing new.
	for _, e := range g.engs {
		e.RunUntil(deadline)
	}
	g.bumpFloor(deadline)
}

// bumpFloor commits the floor past a completed RunUntil deadline: the
// clocks are normalized to the deadline, so any later barrier action at
// or before it would run out of order.
func (g *Group) bumpFloor(deadline Time) {
	f := deadline + 1
	if f < deadline {
		f = MaxTime
	}
	if f > g.floor {
		g.floor = f
	}
}

// windowPool is a persistent worker pool executing one partition window
// per work item. Rebuilding goroutines every round would dominate the
// sub-millisecond windows the protocol produces.
type windowPool struct {
	g    *Group
	work chan int
	wg   sync.WaitGroup

	mu     sync.Mutex
	panicv any
}

func (g *Group) startPool(workers int) *windowPool {
	p := &windowPool{g: g, work: make(chan int)}
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *windowPool) worker() {
	for i := range p.work {
		func() {
			defer func() {
				if r := recover(); r != nil {
					p.mu.Lock()
					if p.panicv == nil {
						p.panicv = r
					}
					p.mu.Unlock()
				}
			}()
			p.g.runWindow(i)
		}()
		p.wg.Done()
	}
}

// runRound executes every partition's window on the pool and waits for
// the barrier. A panic inside any partition's events is re-raised on
// the coordinator goroutine, mirroring serial behavior.
func (p *windowPool) runRound() {
	p.wg.Add(len(p.g.engs))
	for i := range p.g.engs {
		p.work <- i
	}
	p.wg.Wait()
	p.mu.Lock()
	v := p.panicv
	p.mu.Unlock()
	if v != nil {
		panic(v)
	}
}

func (p *windowPool) stop() { close(p.work) }
