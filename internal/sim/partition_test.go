package sim

import (
	"fmt"
	"testing"
)

// pingRecord is one delivered cross-partition message, as observed by
// the destination partition.
type pingRecord struct {
	at   Time
	src  int
	dst  int
	tick uint64
	draw uint64
}

// runPingMesh builds a Group of parts partitions, each running a
// self-ticking process that does local PRNG work and fires
// cross-partition messages, and returns every partition's delivery log.
// The workload exercises simultaneous events (many ticks share an
// instant), fan-in (all partitions target partition 0 more often), and
// chained injects (deliveries schedule follow-up local work).
func runPingMesh(seed uint64, parts, workers int, deadline Time) ([][]pingRecord, *Group) {
	const lookahead = 900 * Nanosecond
	g := NewGroup(seed, parts)
	g.TightenLookahead(lookahead)
	logs := make([][]pingRecord, parts)
	for i := 0; i < parts; i++ {
		i := i
		e := g.Engine(i)
		var tick func(n uint64)
		tick = func(n uint64) {
			draw := e.Rand().Uint64()
			// Fan out: every third tick pings another partition, biased
			// toward partition 0 to create a hot destination.
			if n%3 == 0 {
				dst := 0
				if draw%2 == 0 {
					dst = int(draw/2) % parts
				}
				if dst != i {
					at := e.Now() + lookahead + Time(draw%500)
					n, d := n, draw
					g.Inject(i, dst, at, func() {
						rec := pingRecord{at: g.Engine(dst).Now(), src: i, dst: dst, tick: n, draw: d}
						logs[dst] = append(logs[dst], rec)
						// Chained local work on the destination.
						g.Engine(dst).After(Time(d%97), func() {
							g.Engine(dst).Rand().Uint64()
						})
					})
				}
			}
			if next := e.Now() + Time(100+draw%300); next <= deadline {
				e.At(next, func() { tick(n + 1) })
			}
		}
		e.Defer(func() { tick(0) })
	}
	g.RunUntil(deadline, workers)
	return logs, g
}

// TestGroupParallelMatchesSerial is the core determinism property: the
// same partitioned simulation run with 1 worker and with P workers must
// produce byte-identical per-partition event histories.
func TestGroupParallelMatchesSerial(t *testing.T) {
	for _, parts := range []int{2, 4, 7} {
		for _, seed := range []uint64{1, 42} {
			deadline := 200 * Microsecond
			serial, gs := runPingMesh(seed, parts, 1, deadline)
			parallel, gp := runPingMesh(seed, parts, parts, deadline)
			for i := range serial {
				if len(serial[i]) != len(parallel[i]) {
					t.Fatalf("parts=%d seed=%d partition %d: %d records serial vs %d parallel",
						parts, seed, i, len(serial[i]), len(parallel[i]))
				}
				for k := range serial[i] {
					if serial[i][k] != parallel[i][k] {
						t.Fatalf("parts=%d seed=%d partition %d record %d: %+v vs %+v",
							parts, seed, i, k, serial[i][k], parallel[i][k])
					}
				}
			}
			if gs.ExecutedEvents() != gp.ExecutedEvents() {
				t.Fatalf("executed: %d serial vs %d parallel", gs.ExecutedEvents(), gp.ExecutedEvents())
			}
			if gs.Crossed() == 0 {
				t.Fatalf("workload degenerate: no cross-partition traffic")
			}
			if gs.Rounds() == 0 || gp.Rounds() == 0 {
				t.Fatalf("no synchronization rounds ran")
			}
		}
	}
}

// TestGroupClockNormalization: after RunUntil every partition sits at
// the deadline and post-deadline events stay pending.
func TestGroupClockNormalization(t *testing.T) {
	g := NewGroup(7, 3)
	g.TightenLookahead(Microsecond)
	fired := false
	g.Engine(1).At(5*Microsecond, func() {})
	g.Engine(2).At(20*Microsecond, func() { fired = true })
	g.RunUntil(10*Microsecond, 3)
	for i := 0; i < 3; i++ {
		if now := g.Engine(i).Now(); now != 10*Microsecond {
			t.Fatalf("partition %d clock %v, want 10µs", i, now)
		}
	}
	if fired {
		t.Fatalf("event past the deadline fired")
	}
	if g.Engine(2).Pending() != 1 {
		t.Fatalf("pending = %d, want the post-deadline event", g.Engine(2).Pending())
	}
}

// TestGroupSinglePartitionDelegates: a 1-partition group behaves
// exactly like a bare engine with the same seed.
func TestGroupSinglePartitionDelegates(t *testing.T) {
	run := func(e *Engine) (uint64, Time) {
		var sum uint64
		for i := 0; i < 50; i++ {
			e.At(Time(i*10), func() { sum += e.Rand().Uint64() })
		}
		e.RunUntil(Microsecond)
		return sum, e.Now()
	}
	g := NewGroup(99, 1)
	gotSum, gotNow := run(g.Engine(0))
	wantSum, wantNow := run(NewEngine(99))
	if gotSum != wantSum || gotNow != wantNow {
		t.Fatalf("1-partition group diverged from bare engine: (%d,%v) vs (%d,%v)",
			gotSum, gotNow, wantSum, wantNow)
	}
}

// TestInjectLookaheadViolationPanics: scheduling a cross-partition
// event inside the lookahead horizon is a model bug and must not be
// silently reordered.
func TestInjectLookaheadViolationPanics(t *testing.T) {
	g := NewGroup(1, 2)
	g.TightenLookahead(Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatalf("lookahead violation did not panic")
		}
	}()
	g.Inject(0, 1, 500*Nanosecond, func() {})
}

// TestGroupRequiresLookahead: a multi-partition run without an
// established latency floor cannot be conservative.
func TestGroupRequiresLookahead(t *testing.T) {
	g := NewGroup(1, 2)
	g.Engine(0).At(1, func() {})
	defer func() {
		if recover() == nil {
			t.Fatalf("run without lookahead did not panic")
		}
	}()
	g.RunUntil(Microsecond, 2)
}

// TestGroupPanicPropagates: a panic inside a partition's event surfaces
// on the coordinating goroutine, like in a serial run.
func TestGroupPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 2} {
		g := NewGroup(1, 2)
		g.TightenLookahead(Microsecond)
		g.Engine(1).At(10, func() { panic("boom") })
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("workers=%d: partition panic lost", workers)
				} else if fmt.Sprint(r) != "boom" {
					t.Fatalf("workers=%d: panic value %v", workers, r)
				}
			}()
			g.RunUntil(Microsecond, workers)
		}()
	}
}

// TestTotalExecutedFlushesAtWindows is the progress-meter fix: an event
// in a late window must observe the executed counts of earlier windows
// in TotalExecuted, not just at the end of the run.
func TestTotalExecutedFlushesAtWindows(t *testing.T) {
	g := NewGroup(3, 2)
	g.TightenLookahead(Microsecond)
	base := TotalExecuted()
	e0 := g.Engine(0)
	// First window: a burst of 200 events inside one lookahead span.
	for i := 0; i < 200; i++ {
		e0.At(Time(i), func() {})
	}
	// A much later window observes the meter.
	var seen uint64
	g.Engine(1).At(Millisecond, func() { seen = TotalExecuted() - base })
	g.RunUntil(2*Millisecond, 1)
	if seen < 200 {
		t.Fatalf("mid-run TotalExecuted advance = %d, want ≥ 200 (per-window flush missing)", seen)
	}
}

// TestAtBarrierOrderingContract pins the barrier ordering rules on a
// multi-partition group: an action at time B runs after every event
// strictly before B on every partition, before any event at B, with all
// clocks normalized to B-1, and may schedule follow-on events at ≥ B.
func TestAtBarrierOrderingContract(t *testing.T) {
	g := NewGroup(1, 2)
	g.TightenLookahead(Microsecond)
	const B = 10 * Microsecond
	var trace []string
	g.Engine(0).At(B-1, func() { trace = append(trace, "p0@B-1") })
	g.Engine(1).At(B-1, func() { trace = append(trace, "p1@B-1") })
	g.Engine(0).At(B, func() { trace = append(trace, "p0@B") })
	g.Engine(1).At(B+1, func() { trace = append(trace, "p1@B+1") })
	g.AtBarrier(B, func() {
		trace = append(trace, "barrier")
		if n0, n1 := g.Engine(0).Now(), g.Engine(1).Now(); n0 != B-1 || n1 != B-1 {
			t.Errorf("barrier action saw clocks %v/%v, want both normalized to %v", n0, n1, B-1)
		}
		// Follow-on work at the barrier time itself is legal.
		g.Engine(1).At(B, func() { trace = append(trace, "p1@B-followon") })
	})
	// workers=1: the shared trace is appended from window events on both
	// partitions, which would race under a pool; the ordering contract is
	// identical at any worker count (see the determinism test).
	g.RunUntil(20*Microsecond, 1)
	want := []string{"p0@B-1", "p1@B-1", "barrier", "p0@B", "p1@B-followon", "p1@B+1"}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Fatalf("barrier ordering:\n got %v\nwant %v", trace, want)
	}
}

// TestAtBarrierSameTimeAndChaining: same-time actions run in
// registration order; an action chaining another at the same instant is
// picked up in the same pass, and a later chain runs at its own time.
func TestAtBarrierSameTimeAndChaining(t *testing.T) {
	for _, parts := range []int{1, 3} {
		g := NewGroup(2, parts)
		g.TightenLookahead(Microsecond)
		var order []string
		g.AtBarrier(5*Microsecond, func() {
			order = append(order, "a")
			g.AtBarrier(5*Microsecond, func() { order = append(order, "a-chain") })
			g.AtBarrier(8*Microsecond, func() { order = append(order, "late-chain") })
		})
		g.AtBarrier(5*Microsecond, func() { order = append(order, "b") })
		// Keep the mesh busy so windows actually advance.
		for i := 0; i < parts; i++ {
			e := g.Engine(i)
			e.At(0, func() {})
			e.At(9*Microsecond, func() {})
		}
		g.RunUntil(10*Microsecond, parts)
		want := []string{"a", "b", "a-chain", "late-chain"}
		if fmt.Sprint(order) != fmt.Sprint(want) {
			t.Fatalf("parts=%d: action order %v, want %v", parts, order, want)
		}
	}
}

// TestAtBarrierPastFloorPanics: scheduling an action behind the commit
// floor is a model bug and panics, like Engine.At on a past time.
func TestAtBarrierPastFloorPanics(t *testing.T) {
	g := NewGroup(3, 2)
	g.TightenLookahead(Microsecond)
	g.Engine(0).At(Microsecond, func() {})
	g.RunUntil(5*Microsecond, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("AtBarrier before the commit floor did not panic")
		}
	}()
	g.AtBarrier(2*Microsecond, func() {})
}

// TestAtBarrierPastDeadlineStaysQueued: an action beyond the RunUntil
// deadline does not run in that call, and fires on a later RunUntil that
// covers it — on both the single-engine and windowed paths.
func TestAtBarrierPastDeadlineStaysQueued(t *testing.T) {
	for _, parts := range []int{1, 2} {
		g := NewGroup(4, parts)
		g.TightenLookahead(Microsecond)
		ran := 0
		g.AtBarrier(8*Microsecond, func() { ran++ })
		g.Engine(0).At(Microsecond, func() {})
		g.RunUntil(5*Microsecond, parts)
		if ran != 0 {
			t.Fatalf("parts=%d: action past the deadline ran early", parts)
		}
		g.RunUntil(10*Microsecond, parts)
		if ran != 1 {
			t.Fatalf("parts=%d: queued action ran %d times after covering RunUntil, want 1", parts, ran)
		}
	}
}

// TestAtBarrierDeterminismAcrossWorkers runs the ping mesh with barrier
// actions mutating shared state mid-run and compares full delivery logs
// plus barrier observations across 1, 2, and 4 workers.
func TestAtBarrierDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		const parts, deadline = 4, 200 * Microsecond
		const lookahead = 900 * Nanosecond
		g := NewGroup(7, parts)
		g.TightenLookahead(lookahead)
		shared := 0 // cluster-wide state only barrier actions touch
		var out []string
		logs := make([][]pingRecord, parts)
		for i := 0; i < parts; i++ {
			i := i
			e := g.Engine(i)
			var tick func(n uint64)
			tick = func(n uint64) {
				draw := e.Rand().Uint64()
				if n%3 == 0 {
					dst := int(draw % uint64(parts))
					if dst != i {
						at := e.Now() + lookahead + Time(draw%500)
						n, d := n, draw
						g.Inject(i, dst, at, func() {
							logs[dst] = append(logs[dst], pingRecord{
								at: g.Engine(dst).Now(), src: i, dst: dst, tick: n, draw: d})
						})
					}
				}
				if next := e.Now() + Time(100+draw%300); next <= deadline {
					e.At(next, func() { tick(n + 1) })
				}
			}
			e.Defer(func() { tick(0) })
		}
		for _, at := range []Time{30 * Microsecond, 100 * Microsecond, 100 * Microsecond} {
			at := at
			g.AtBarrier(at, func() {
				shared++
				total := uint64(0)
				for i := 0; i < parts; i++ {
					total += g.Engine(i).Executed()
				}
				out = append(out, fmt.Sprintf("t=%d shared=%d executed=%d", int64(at), shared, total))
			})
		}
		g.RunUntil(deadline, workers)
		for p := range logs {
			for _, r := range logs[p] {
				out = append(out, fmt.Sprintf("p%d %v %d->%d tick=%d draw=%d", p, r.at, r.src, r.dst, r.tick, r.draw))
			}
		}
		return fmt.Sprint(out)
	}
	base := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); got != base {
			t.Fatalf("barrier-action run diverged at %d workers", w)
		}
	}
}

// TestAtBarrierUnderUnboundedRun: Group.Run (deadline = MaxTime) must
// terminate once the group drains — the empty action queue's MaxTime
// sentinel is "no barrier pending", not a barrier at MaxTime — and
// still run actions scheduled past the last event first.
func TestAtBarrierUnderUnboundedRun(t *testing.T) {
	for _, parts := range []int{1, 2} {
		g := NewGroup(4, parts)
		g.TightenLookahead(Microsecond)
		ran := 0
		g.AtBarrier(8*Microsecond, func() { ran++ })
		g.Engine(0).At(Microsecond, func() {})
		g.Engine(parts-1).At(2*Microsecond, func() {})
		g.Run(parts) // regression: looped forever on the drained group
		if ran != 1 {
			t.Fatalf("parts=%d: action past the last event ran %d times under Run, want 1", parts, ran)
		}
	}
}

// TestDeferBarrierCommitsAtWindowBoundary: a mutation registered from
// inside window execution runs at the window's limit — after every
// event strictly before it, before every event at or past it — with
// partition clocks normalized to limit-1, exactly like an AtBarrier
// action registered up front.
func TestDeferBarrierCommitsAtWindowBoundary(t *testing.T) {
	g := NewGroup(1, 2)
	g.TightenLookahead(Microsecond)
	var trace []string
	g.Engine(0).At(5*Microsecond, func() {
		trace = append(trace, "p0@5")
		g.DeferBarrier(0, func() {
			trace = append(trace, "commit")
			if n0, n1 := g.Engine(0).Now(), g.Engine(1).Now(); n0 != n1 {
				t.Errorf("commit saw unnormalized clocks %v/%v", n0, n1)
			}
			// Follow-on engine work from a commit is legal.
			g.Engine(1).At(g.Engine(1).Now()+Microsecond, func() { trace = append(trace, "followon") })
		})
	})
	g.Engine(1).At(5*Microsecond, func() { trace = append(trace, "p1@5") })
	g.Engine(1).At(8*Microsecond, func() { trace = append(trace, "p1@8") })
	g.RunUntil(20*Microsecond, 1)
	want := []string{"p0@5", "p1@5", "commit", "followon", "p1@8"}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Fatalf("deferred commit ordering:\n got %v\nwant %v", trace, want)
	}
}

// TestDeferBarrierSinglePartition: with one partition there are no
// concurrent readers to defer around; the mutation runs inline, like on
// a classic engine.
func TestDeferBarrierSinglePartition(t *testing.T) {
	g := NewGroup(2, 1)
	var trace []string
	g.Engine(0).At(Microsecond, func() {
		trace = append(trace, "event")
		g.DeferBarrier(0, func() { trace = append(trace, "inline") })
		trace = append(trace, "after")
	})
	g.RunUntil(2*Microsecond, 1)
	want := []string{"event", "inline", "after"}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Fatalf("single-partition defer:\n got %v\nwant %v", trace, want)
	}
}

// TestDeferBarrierPartitionOrder: deferrals from different partitions
// in the same round run in partition order, not in whatever order the
// window goroutines happened to reach them — run under a full worker
// pool to make the distinction real.
func TestDeferBarrierPartitionOrder(t *testing.T) {
	g := NewGroup(3, 3)
	g.TightenLookahead(Microsecond)
	var order []string // appended only from coordinator context
	for i := 2; i >= 0; i-- {
		i := i
		g.Engine(i).At(5*Microsecond, func() {
			g.DeferBarrier(i, func() { order = append(order, fmt.Sprintf("p%d", i)) })
		})
	}
	g.RunUntil(10*Microsecond, 3)
	want := []string{"p0", "p1", "p2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("deferred commits ran in order %v, want partition order %v", order, want)
	}
}

// TestDeferBarrierDeterminismAcrossWorkers: the ping mesh with every
// partition deferring shared-state mutations mid-window produces the
// same mutation log at any worker count.
func TestDeferBarrierDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		const parts, deadline = 4, 200 * Microsecond
		const lookahead = 900 * Nanosecond
		g := NewGroup(11, parts)
		g.TightenLookahead(lookahead)
		shared := 0
		var out []string
		for i := 0; i < parts; i++ {
			i := i
			e := g.Engine(i)
			var tick func(n uint64)
			tick = func(n uint64) {
				draw := e.Rand().Uint64()
				if n%5 == uint64(i) {
					at, d := e.Now(), draw
					g.DeferBarrier(i, func() {
						shared++
						out = append(out, fmt.Sprintf("p%d t=%d draw=%d shared=%d", i, int64(at), d%997, shared))
					})
				}
				if next := e.Now() + Time(300+draw%900); next <= deadline {
					e.At(next, func() { tick(n + 1) })
				}
			}
			e.At(Time(i+1)*Microsecond, func() { tick(0) })
		}
		g.RunUntil(deadline, workers)
		return fmt.Sprint(out)
	}
	base := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); got != base {
			t.Fatalf("deferred-commit run diverged at %d workers", w)
		}
	}
}
