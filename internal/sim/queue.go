package sim

// eventQueue is a 4-ary min-heap of *event ordered by (at, seq). It is
// specialized to the event type — no interface boxing, no per-element
// index bookkeeping — because the engine's schedule/pop cycle is the
// hottest loop in the whole simulator. A 4-ary layout halves the tree
// depth of a binary heap, trading a few extra comparisons per level for
// far fewer cache-missing hops on sift-down; for the queue depths the
// substrates produce (10²–10⁵ pending events) that is a clear win.
//
// The ordering is a strict total order (seq is unique), so pop order is
// identical to any other min-heap over the same comparator — swapping
// the container/heap implementation for this one cannot reorder events.
type eventQueue []*event

// before reports whether a fires strictly before b.
func before(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// push inserts ev, sifting it up with the hole-propagation trick (move
// parents down, write ev once) instead of pairwise swaps.
func (q *eventQueue) push(ev *event) {
	a := append(*q, ev)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !before(ev, a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = ev
	*q = a
}

// pop removes and returns the earliest event. The queue must not be
// empty.
func (q *eventQueue) pop() *event {
	a := *q
	root := a[0]
	n := len(a) - 1
	last := a[n]
	a[n] = nil // release the pointer for GC
	a = a[:n]
	*q = a
	if n > 0 {
		a[0] = last
		a.down(0)
	}
	return root
}

// down sifts the event at index i toward the leaves.
func (q eventQueue) down(i int) {
	n := len(q)
	ev := q[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		if c+1 < n && before(q[c+1], q[m]) {
			m = c + 1
		}
		if c+2 < n && before(q[c+2], q[m]) {
			m = c + 2
		}
		if c+3 < n && before(q[c+3], q[m]) {
			m = c + 3
		}
		if !before(q[m], ev) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = ev
}

// reheap restores the heap invariant over arbitrary contents (used after
// compaction filters out cancelled events in place).
func (q eventQueue) reheap() {
	for i := (len(q) - 2) >> 2; i >= 0; i-- {
		q.down(i)
	}
}
