package sim

import "testing"

// refEvent mirrors one scheduled event in the reference model.
type refEvent struct {
	at      Time
	seq     uint64
	id      int
	stopped bool
	fired   bool
}

// refModel is the reference scheduler the 4-ary heap is checked
// against: a flat slice with O(n) pop-min over (at, seq). It is
// obviously correct and shares no code with eventQueue.
type refModel struct {
	events []*refEvent
	now    Time
}

func (m *refModel) popMin() *refEvent {
	var best *refEvent
	for _, r := range m.events {
		if r.stopped || r.fired {
			continue
		}
		if best == nil || r.at < best.at || (r.at == best.at && r.seq < best.seq) {
			best = r
		}
	}
	if best != nil {
		best.fired = true
		m.now = best.at
	}
	return best
}

// TestEventQueuePropertyVsReference drives the engine through
// randomized push/pop/Stop interleavings — including stop storms dense
// enough to cross the dead-event compaction threshold — and checks
// every execution against the reference model, for 8 seeds.
func TestEventQueuePropertyVsReference(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := NewRand(seed * 0x9e3779b97f4a7c15)
		e := NewEngine(seed)
		m := &refModel{}
		var got []int
		nextID := 0
		var refSeq uint64

		type handle struct {
			tm Timer
			r  *refEvent
		}
		var handles []handle

		schedule := func(horizon int) {
			at := e.Now() + Time(rng.Intn(horizon))
			id := nextID
			nextID++
			r := &refEvent{at: at, seq: refSeq, id: id}
			refSeq++
			tm := e.At(at, func() { got = append(got, id) })
			m.events = append(m.events, r)
			handles = append(handles, handle{tm, r})
		}
		stopRandom := func() {
			if len(handles) == 0 {
				return
			}
			h := handles[rng.Intn(len(handles))]
			gotStop := h.tm.Stop()
			wantStop := !h.r.stopped && !h.r.fired
			if gotStop != wantStop {
				t.Fatalf("seed %d: Stop() = %v, reference pending = %v (event %d)",
					seed, gotStop, wantStop, h.r.id)
			}
			h.r.stopped = true
		}
		step := func() {
			want := m.popMin()
			before := len(got)
			ran := e.Step()
			if ran != (want != nil) {
				t.Fatalf("seed %d: Step() = %v but reference had pending = %v", seed, ran, want != nil)
			}
			if want == nil {
				return
			}
			if len(got) != before+1 || got[len(got)-1] != want.id {
				t.Fatalf("seed %d: executed %v, reference wanted event %d", seed, got[before:], want.id)
			}
			if e.Now() != want.at {
				t.Fatalf("seed %d: clock %v after event %d, reference %v", seed, e.Now(), want.id, want.at)
			}
		}

		// Phase 1: mixed traffic.
		for op := 0; op < 2000; op++ {
			switch r := rng.Intn(100); {
			case r < 45:
				schedule(1000)
			case r < 75:
				step()
			default:
				stopRandom()
			}
		}
		// Phase 2: stop storm — push the dead count past the compaction
		// threshold (dead > 64 and dead > half the heap) repeatedly.
		for round := 0; round < 4; round++ {
			for i := 0; i < 90; i++ {
				schedule(500)
			}
			for i := 0; i < 160; i++ {
				stopRandom()
			}
			for i := 0; i < 20; i++ {
				step()
			}
		}
		// Phase 3: drain both to empty and compare the full tail.
		for e.Step() {
			want := m.popMin()
			if want == nil || got[len(got)-1] != want.id {
				t.Fatalf("seed %d: drain diverged at %v", seed, got[len(got)-1])
			}
		}
		if left := m.popMin(); left != nil {
			t.Fatalf("seed %d: engine drained but reference still has event %d", seed, left.id)
		}
		if e.dead != 0 && e.dead > len(e.q) {
			t.Fatalf("seed %d: dead accounting corrupt: dead=%d len(q)=%d", seed, e.dead, len(e.q))
		}
	}
}
