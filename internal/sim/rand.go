package sim

import "math"

// Rand is a small, fast, deterministic PRNG (xoshiro256**). The standard
// library's math/rand/v2 would serve, but owning the generator guarantees
// bit-identical streams across Go releases, which the experiment harness
// depends on for reproducible tables.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via splitmix64.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// A zero state would be absorbing; splitmix64 cannot produce four
	// zeros from any seed, but be defensive.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box-Muller).
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}
