package sim

// Job is a unit of work with a known service demand at a Station.
type Job struct {
	// Service is how long the job occupies the server.
	Service Time
	// Done, if non-nil, runs when the job completes service.
	Done func(enqueued, started, finished Time)
	// Payload carries arbitrary caller context through the station.
	Payload any

	enqueued Time
}

// Station is a FIFO queueing station with a configurable number of
// identical servers (a G/G/k queue). It is the building block for DMA
// engines, link serializers, and other pipeline stages whose internal
// scheduling is plain FIFO. Cores with nontrivial disciplines live in
// internal/sched instead.
type Station struct {
	eng     *Engine
	servers int
	busy    int
	queue   []*Job

	// Busy time accounting for utilization measurements.
	busyAccum  Time
	lastChange Time
	createdAt  Time

	// Stats.
	completed uint64
	maxQueue  int
}

// NewStation creates a station with the given number of parallel servers.
func NewStation(eng *Engine, servers int) *Station {
	if servers <= 0 {
		panic("sim: station needs at least one server")
	}
	return &Station{eng: eng, servers: servers, lastChange: eng.Now(), createdAt: eng.Now()}
}

// Servers returns the number of parallel servers.
func (s *Station) Servers() int { return s.servers }

// QueueLen returns the number of jobs waiting (not in service).
func (s *Station) QueueLen() int { return len(s.queue) }

// InService returns the number of jobs currently being served.
func (s *Station) InService() int { return s.busy }

// Completed returns the number of jobs that finished service.
func (s *Station) Completed() uint64 { return s.completed }

// MaxQueue returns the high-water mark of the wait queue.
func (s *Station) MaxQueue() int { return s.maxQueue }

// Submit enqueues a job; it starts immediately if a server is idle.
func (s *Station) Submit(j *Job) {
	j.enqueued = s.eng.Now()
	if s.busy < s.servers {
		s.start(j)
		return
	}
	s.queue = append(s.queue, j)
	if len(s.queue) > s.maxQueue {
		s.maxQueue = len(s.queue)
	}
}

func (s *Station) start(j *Job) {
	s.account()
	s.busy++
	started := s.eng.Now()
	s.eng.After(j.Service, func() {
		s.account()
		s.busy--
		s.completed++
		if j.Done != nil {
			j.Done(j.enqueued, started, s.eng.Now())
		}
		s.dispatch()
	})
}

func (s *Station) dispatch() {
	for s.busy < s.servers && len(s.queue) > 0 {
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.start(j)
	}
}

func (s *Station) account() {
	now := s.eng.Now()
	s.busyAccum += Time(s.busy) * (now - s.lastChange)
	s.lastChange = now
}

// Utilization returns the mean fraction of server capacity used since the
// station was created (1.0 means all servers always busy).
func (s *Station) Utilization() float64 {
	s.account()
	elapsed := s.eng.Now() - s.createdAt
	if elapsed <= 0 {
		return 0
	}
	return float64(s.busyAccum) / float64(int64(elapsed)*int64(s.servers))
}
