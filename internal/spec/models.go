package spec

import "repro/internal/sim"

// ns is a convenience constructor for sub-microsecond constants.
func ns(v float64) sim.Time { return sim.Time(v) }

// us converts microseconds to sim.Time.
func us(v float64) sim.Time { return sim.Micros(v) }

// liquidAccels is the accelerator suite of the OCTEON-based LiquidIOII
// cards, straight from Table 3 (per-request latency for 1KB requests at
// batch sizes 1/8/32).
func liquidAccels() map[string]AccelProfile {
	mk := func(name string, ipc, mpki float64, b1, b8, b32 float64, hostX float64) AccelProfile {
		lat := map[int]sim.Time{1: us(b1)}
		if b8 > 0 {
			lat[8] = us(b8)
		}
		if b32 > 0 {
			lat[32] = us(b32)
		}
		return AccelProfile{Name: name, IPC: ipc, MPKI: mpki, LatencyByBatch: lat, HostSpeedup: hostX}
	}
	return map[string]AccelProfile{
		"CRC":    mk("CRC", 1.2, 2.8, 2.6, 0.7, 0.3, 1),
		"MD5":    mk("MD5", 0.7, 2.6, 5.0, 3.1, 3.0, 7.0),
		"SHA-1":  mk("SHA-1", 0.9, 2.6, 3.5, 1.2, 0.9, 1),
		"3DES":   mk("3DES", 0.8, 0.9, 3.4, 1.3, 1.1, 1),
		"AES":    mk("AES", 1.1, 0.9, 2.7, 1.0, 0.8, 2.5),
		"KASUMI": mk("KASUMI", 1.0, 0.9, 2.7, 1.1, 0.9, 1),
		"SMS4":   mk("SMS4", 0.8, 0.9, 3.5, 1.4, 1.2, 1),
		"SNOW3G": mk("SNOW3G", 1.4, 0.5, 2.3, 0.9, 0.8, 1),
		"FAU":    mk("FAU", 1.4, 0.6, 1.9, 1.4, 1.0, 1),
		"ZIP":    mk("ZIP", 1.0, 0.2, 190.9, 0, 0, 1),
		"DFA":    mk("DFA", 1.3, 0.2, 9.2, 7.5, 7.3, 1),
	}
}

// armAccels is the reduced accelerator suite modeled for the ARM-based
// cards (crypto offload engines exist on both; profiles are scaled from
// the LiquidIO measurements since the paper reports "similar
// characteristics" for BlueField and Stingray in §2.2.3).
func armAccels() map[string]AccelProfile {
	out := map[string]AccelProfile{}
	for name, a := range liquidAccels() {
		switch name {
		case "MD5", "SHA-1", "AES", "3DES", "CRC":
			out[name] = a
		}
	}
	return out
}

// LiquidIOII_CN2350 is the 10GbE on-path card (Table 1 row 1). The echo
// and forwarding-tax cost models are the Figure 2/4 calibrations
// documented in the package comment.
func LiquidIOII_CN2350() *NICModel {
	return &NICModel{
		Name:     "LiquidIOII CN2350",
		Vendor:   "Marvell",
		ISA:      "cnMIPS",
		Cores:    12,
		FreqGHz:  1.2,
		LinkGbps: 10,
		OnPath:   true,
		FullOS:   false,
		Memory: MemoryProfile{
			L1: ns(8.3), L2: ns(55.8), DRAM: ns(115.0),
			CacheLineBytes: 128, ScratchpadLines: 54,
			LastLevelBytes: 4 << 20,
		},
		DMA: DMAProfile{
			// Figure 7: blocking read ≈1.1µs at 4B → ≈3.6µs at 2KB;
			// blocking write ≈0.8µs → ≈2.2µs; non-blocking flat ≈0.3µs.
			BlockingRead:       LinearCost{Fixed: us(1.05), PerByte: 1.25},
			BlockingWrite:      LinearCost{Fixed: us(0.78), PerByte: 0.70},
			NonBlockingIssue:   us(0.30),
			EngineBandwidthGBs: 2.1,
		},
		EchoCost:          LinearCost{Fixed: us(1.90), PerByte: 1.16},
		FwdTax:            LinearCost{Fixed: us(0.125), PerByte: 0.10},
		HasTrafficManager: true,
		// Figure 6: hardware-assisted messaging, ≈4.6X/4.2X faster than
		// host DPDK/RDMA send averaged across 4B–1024B.
		NICSendCost:  LinearCost{Fixed: us(0.35), PerByte: 0.30},
		NICRecvCost:  LinearCost{Fixed: us(0.40), PerByte: 0.30},
		TailThreshUs: 52.8,
		MeanThreshUs: 21.0,
		Accels:       liquidAccels(),
	}
}

// LiquidIOII_CN2360 is the 25GbE on-path sibling (Table 1 row 2):
// 16 cores at 1.5GHz. Costs scale from the CN2350 by the frequency ratio.
func LiquidIOII_CN2360() *NICModel {
	m := LiquidIOII_CN2350()
	m.Name = "LiquidIOII CN2360"
	m.Cores = 16
	m.FreqGHz = 1.5
	m.LinkGbps = 25
	scale := 1.2 / 1.5
	m.EchoCost = LinearCost{Fixed: sim.Time(float64(us(1.90)) * scale), PerByte: 1.16 * scale}
	m.FwdTax = LinearCost{Fixed: sim.Time(float64(us(0.125)) * scale), PerByte: 0.10 * scale}
	m.TailThreshUs = 48.0
	m.MeanThreshUs = 19.0
	return m
}

// BlueField_1M332A is the 25GbE off-path Mellanox card (Table 1 row 3):
// 8 ARM A72 cores at a low 0.8GHz, full OS, RDMA to host.
func BlueField_1M332A() *NICModel {
	return &NICModel{
		Name:     "BlueField 1M332A",
		Vendor:   "Mellanox",
		ISA:      "ARM A72",
		Cores:    8,
		FreqGHz:  0.8,
		LinkGbps: 25,
		OnPath:   false,
		FullOS:   true,
		Memory: MemoryProfile{
			L1: ns(5.0), L2: ns(25.6), DRAM: ns(132.0),
			CacheLineBytes: 64, LastLevelBytes: 1 << 20,
		},
		DMA: DMAProfile{
			// Figures 9/10: RDMA verbs ≈2x blocking-DMA latency; small-
			// message throughput one third of native DMA.
			BlockingRead:       LinearCost{Fixed: us(2.05), PerByte: 1.45},
			BlockingWrite:      LinearCost{Fixed: us(1.60), PerByte: 0.90},
			NonBlockingIssue:   us(0.45),
			EngineBandwidthGBs: 2.0,
			RDMA:               true,
		},
		// Echo cost scaled from the Stingray calibration by the 3.0/0.8
		// frequency ratio (same core microarchitecture).
		EchoCost:          LinearCost{Fixed: us(0.675), PerByte: 0.30},
		FwdTax:            LinearCost{Fixed: 0, PerByte: 0.26},
		PPSCap:            18e6,
		HasTrafficManager: false,
		NICSendCost:       LinearCost{Fixed: us(0.80), PerByte: 0.35},
		NICRecvCost:       LinearCost{Fixed: us(0.85), PerByte: 0.35},
		TailThreshUs:      60.0,
		MeanThreshUs:      24.0,
		Accels:            armAccels(),
	}
}

// Stingray_PS225 is the 25GbE off-path Broadcom card (Table 1 row 4):
// 8 ARM A72 cores at 3.0GHz, full OS, RDMA to host. The echo cost is
// calibrated so Figure 3's cores-for-line-rate come out as 3/2/1/1 for
// 256/512/1024/1500B, and the 18Mpps switch ceiling keeps 64/128B traffic
// below line rate as §2.2.2 observes.
func Stingray_PS225() *NICModel {
	return &NICModel{
		Name:     "Stingray PS225",
		Vendor:   "Broadcom",
		ISA:      "ARM A72",
		Cores:    8,
		FreqGHz:  3.0,
		LinkGbps: 25,
		OnPath:   false,
		FullOS:   true,
		Memory: MemoryProfile{
			L1: ns(1.3), L2: ns(25.1), DRAM: ns(85.3),
			CacheLineBytes: 64, LastLevelBytes: 16 << 20,
		},
		DMA: DMAProfile{
			BlockingRead:       LinearCost{Fixed: us(1.95), PerByte: 1.40},
			BlockingWrite:      LinearCost{Fixed: us(1.50), PerByte: 0.85},
			NonBlockingIssue:   us(0.40),
			EngineBandwidthGBs: 2.1,
			RDMA:               true,
		},
		EchoCost:          LinearCost{Fixed: us(0.18), PerByte: 0.08},
		FwdTax:            LinearCost{Fixed: 0, PerByte: 0.07},
		PPSCap:            18e6,
		HasTrafficManager: false,
		NICSendCost:       LinearCost{Fixed: us(0.45), PerByte: 0.20},
		NICRecvCost:       LinearCost{Fixed: us(0.50), PerByte: 0.20},
		TailThreshUs:      44.6,
		MeanThreshUs:      18.0,
		Accels:            armAccels(),
	}
}

// AllNICs returns the four characterized models in Table 1 order.
func AllNICs() []*NICModel {
	return []*NICModel{
		LiquidIOII_CN2350(),
		LiquidIOII_CN2360(),
		BlueField_1M332A(),
		Stingray_PS225(),
	}
}

// NICByName looks a model up by its Table 1 name.
func NICByName(name string) (*NICModel, bool) {
	for _, m := range AllNICs() {
		if m.Name == name {
			return m, true
		}
	}
	return nil, false
}

// IntelHost is the 12-core E5-2680v3 @2.5GHz server of the 10/25GbE
// LiquidIO testbeds (§2.2.1), with Table 2's host memory latencies and
// Figure 6's DPDK/RDMA host messaging costs.
func IntelHost() *HostModel {
	return &HostModel{
		Name:    "Intel E5-2680 v3",
		Cores:   12,
		FreqGHz: 2.5,
		Memory: MemoryProfile{
			L1: ns(1.2), L2: ns(6.0), L3: ns(22.4), DRAM: ns(62.2),
			CacheLineBytes: 64, LastLevelBytes: 30 << 20,
		},
		DPDKSendCost:   LinearCost{Fixed: us(1.80), PerByte: 0.90},
		DPDKRecvCost:   LinearCost{Fixed: us(1.90), PerByte: 0.90},
		RDMASendCost:   LinearCost{Fixed: us(1.60), PerByte: 0.80},
		RDMARecvCost:   LinearCost{Fixed: us(1.70), PerByte: 0.80},
		DPDKRxOcc:      us(0.45),
		DPDKTxOcc:      us(0.35),
		RingRxOcc:      us(0.10),
		RingTxOcc:      us(0.08),
		ComputeSpeedup: 3.5,
		MemorySpeedup:  1.3,
	}
}

// XeonE5_2620v4Host is the 2U server used with BlueField and Stingray.
func XeonE5_2620v4Host() *HostModel {
	h := IntelHost()
	h.Name = "Intel E5-2620 v4"
	h.Cores = 16 // 2 sockets x 8 cores
	h.FreqGHz = 2.1
	h.ComputeSpeedup = 3.0
	return h
}

// Workloads is Table 3's left half: representative in-network offloaded
// workloads with their measured execution latency (1KB requests on the
// CN2350), IPC, and L2 MPKI.
func Workloads() []WorkloadProfile {
	return []WorkloadProfile{
		{Name: "Baseline (echo)", DataStruct: "N/A", ExecLat1KB: us(1.87), IPC: 1.4, MPKI: 0.6},
		{Name: "Flow monitor", DataStruct: "2-D array", ExecLat1KB: us(3.2), IPC: 1.4, MPKI: 0.8},
		{Name: "KV cache", DataStruct: "Hashtable", ExecLat1KB: us(3.7), IPC: 1.2, MPKI: 0.9},
		{Name: "Top ranker", DataStruct: "1-D array", ExecLat1KB: us(34.0), IPC: 1.7, MPKI: 0.1},
		{Name: "Rate limiter", DataStruct: "FIFO", ExecLat1KB: us(8.2), IPC: 0.7, MPKI: 4.4},
		{Name: "Firewall", DataStruct: "TCAM", ExecLat1KB: us(3.7), IPC: 1.3, MPKI: 1.6},
		{Name: "Router", DataStruct: "Trie", ExecLat1KB: us(2.2), IPC: 1.3, MPKI: 0.6},
		{Name: "Load balancer", DataStruct: "Permut. table", ExecLat1KB: us(2.0), IPC: 1.3, MPKI: 1.3},
		{Name: "Packet scheduler", DataStruct: "BST tree", ExecLat1KB: us(12.6), IPC: 0.5, MPKI: 4.9},
		{Name: "Flow classifier", DataStruct: "2-D array", ExecLat1KB: us(71.0), IPC: 0.5, MPKI: 15.2},
		{Name: "Packet replication", DataStruct: "Linklist", ExecLat1KB: us(1.9), IPC: 1.4, MPKI: 0.6},
	}
}

// WorkloadByName looks a Table 3 workload up by name.
func WorkloadByName(name string) (WorkloadProfile, bool) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, true
		}
	}
	return WorkloadProfile{}, false
}
