// Package spec encodes the hardware profiles of the four commodity
// SmartNICs the paper characterizes (Table 1), their memory hierarchies
// (Table 2), the offloaded-workload and accelerator microarchitectural
// profiles (Table 3), and the calibrated per-packet cost models derived
// from Figures 2–10. Every simulated component takes its parameters from
// here, so this package is the single source of truth for "what the
// hardware does".
//
// Calibration notes (derivations live next to each constant):
//
//   - The echo-server per-packet cost for the LiquidIOII CN2350 is fitted
//     from Figure 2's cores-for-line-rate data (10/6/4/3 cores for
//     256/512/1024/1500B) giving cost(s) ≈ 1.9µs + 1.166ns·s at 1.2GHz;
//     the intercept independently matches Table 3's 1.87µs echo baseline.
//   - The dispatch-only forwarding tax is fitted from Figure 4's
//     computing-headroom numbers (2.5/9.8µs at 256/1024B for 10GbE):
//     headroom = cores/lineRatePPS − tax, giving tax(s) ≈ 0.125µs+0.1ns·s
//     for the CN2350 and ≈ 0.07ns·s for the Stingray.
//   - The Stingray's packet-per-second ceiling (traffic manager / NIC
//     switch bound) is set to 18Mpps so that, as in §2.2.2, 64B and 128B
//     traffic cannot reach 25GbE line rate even with all 8 cores while
//     256B traffic needs exactly 3 cores.
package spec

import "repro/internal/sim"

// WireOverheadBytes is the per-frame Ethernet overhead on the wire that
// does not appear in the quoted packet size: 8B preamble + 12B IFG.
const WireOverheadBytes = 20

// MemoryProfile holds load-to-use latencies for each level of a memory
// hierarchy (Table 2). Levels that do not exist are zero.
type MemoryProfile struct {
	L1   sim.Time
	L2   sim.Time
	L3   sim.Time // only the host has an L3
	DRAM sim.Time
	// CacheLineBytes is the line size (128B on LiquidIOII, 64B elsewhere).
	CacheLineBytes int
	// ScratchpadLines is the per-core scratchpad size in cache lines
	// (LiquidIO exposes 54 lines; zero when absent).
	ScratchpadLines int
	// LastLevelBytes is the capacity of the last cache level before
	// DRAM (L2 on the NICs, L3 on the host); it gates the stateful-
	// offloading working-set effect of I5.
	LastLevelBytes int
}

// AccessCost estimates the cost of n dependent random accesses over a
// working set of ws bytes: accesses hit the last-level cache while the
// working set fits, DRAM beyond (the pointer-chasing experiment behind
// Table 2, and implication I5).
func (m MemoryProfile) AccessCost(ws, n int) sim.Time {
	per := m.L2
	if m.L3 != 0 {
		per = m.L3
	}
	if m.LastLevelBytes > 0 && ws > m.LastLevelBytes {
		per = m.DRAM
	}
	return sim.Time(n) * per
}

// LinearCost is a fixed+per-byte cost model: Cost(s) = Fixed + PerByte·s.
type LinearCost struct {
	Fixed   sim.Time
	PerByte float64 // nanoseconds per byte
}

// Cost evaluates the model for a payload of the given size.
func (c LinearCost) Cost(bytes int) sim.Time {
	return c.Fixed + sim.Time(c.PerByte*float64(bytes))
}

// DMAProfile models a SmartNIC's PCIe DMA engine (Figures 7 and 8), or
// the RDMA-verb interface that off-path cards expose instead (Figures 9
// and 10). Blocking operations wait for the completion word; non-blocking
// ones only pay the command-insertion cost at the issuing core while the
// transfer itself occupies the engine for the transfer time.
type DMAProfile struct {
	BlockingRead  LinearCost
	BlockingWrite LinearCost
	// NonBlockingIssue is the core-side cost to enqueue a command.
	NonBlockingIssue sim.Time
	// EngineBandwidthGBs bounds sustained transfer (PCIe Gen3 x8 shares
	// 7.87GB/s across engines; per-core observed ≈2.1GB/s write).
	EngineBandwidthGBs float64
	// RDMA reports whether this profile models RDMA verbs (BlueField,
	// Stingray) rather than native DMA primitives (LiquidIOII). RDMA
	// roughly doubles small-message latency and cuts small-message
	// throughput to a third (§2.2.5, I6).
	RDMA bool
}

// ReadLatency returns the blocking read completion latency for a payload.
func (d DMAProfile) ReadLatency(bytes int) sim.Time { return d.BlockingRead.Cost(bytes) }

// WriteLatency returns the blocking write completion latency for a payload.
func (d DMAProfile) WriteLatency(bytes int) sim.Time { return d.BlockingWrite.Cost(bytes) }

// TransferTime returns the engine occupancy for a payload: the time the
// DMA engine itself is busy moving bytes (used for non-blocking ops and
// for engine-throughput limits).
func (d DMAProfile) TransferTime(bytes int) sim.Time {
	if d.EngineBandwidthGBs <= 0 {
		return 0
	}
	return sim.Time(float64(bytes) / d.EngineBandwidthGBs)
}

// AccelProfile describes a hardware accelerator unit (Table 3, right
// half): its observed IPC and MPKI on the invoking core and the
// per-request execution latency at batch sizes 1, 8, and 32 for 1KB
// requests.
type AccelProfile struct {
	Name string
	IPC  float64
	MPKI float64
	// LatencyByBatch maps batch size → per-request latency. Missing batch
	// sizes (ZIP supports only bsz=1) are absent.
	LatencyByBatch map[int]sim.Time
	// HostSpeedup is how much faster the accelerator is than running the
	// same function on a host core (the paper reports MD5 7.0X and AES
	// 2.5X; others default to 1 meaning not compared).
	HostSpeedup float64
}

// Latency returns the per-request latency at the given batch size,
// falling back to the largest batch not exceeding it.
func (a AccelProfile) Latency(batch int) (sim.Time, bool) {
	if t, ok := a.LatencyByBatch[batch]; ok {
		return t, true
	}
	best := 0
	var bt sim.Time
	for b, t := range a.LatencyByBatch {
		if b <= batch && b > best {
			best, bt = b, t
		}
	}
	if best == 0 {
		return 0, false
	}
	return bt, true
}

// WorkloadProfile describes one of the representative in-network
// workloads of Table 3: execution latency for a 1KB request on the
// CN2350's 1.2GHz cnMIPS core, plus IPC and L2 MPKI.
type WorkloadProfile struct {
	Name       string
	DataStruct string
	ExecLat1KB sim.Time
	IPC        float64
	MPKI       float64
}

// MemBoundFraction estimates how memory-bound the workload is from its
// MPKI; it drives how much (little) the beefy host core helps (I3: low
// IPC / high MPKI tasks are ideal offload candidates).
func (w WorkloadProfile) MemBoundFraction() float64 {
	f := w.MPKI / 16.0
	if f > 1 {
		f = 1
	}
	return f
}

// NICModel is the full profile of one SmartNIC (Table 1 plus calibrated
// cost models).
type NICModel struct {
	Name    string
	Vendor  string
	ISA     string // "cnMIPS" or "ARM A72"
	Cores   int
	FreqGHz float64
	// LinkGbps is the per-port link speed; ports is 2 on all four cards
	// but experiments use one port.
	LinkGbps float64
	OnPath   bool // on-path (LiquidIOII) vs off-path (BlueField, Stingray)
	// FullOS reports whether the card runs Linux (BlueField, Stingray)
	// rather than lightweight firmware (LiquidIOII). It selects the
	// isolation mechanism (§3.4) and the scheduler queue model (§3.2.6).
	FullOS bool

	Memory MemoryProfile
	DMA    DMAProfile

	// EchoCost is the full per-packet cost of receiving, touching, and
	// retransmitting a packet on one NIC core (Figures 2/3 calibration).
	EchoCost LinearCost
	// FwdTax is the dispatch-only cost charged to a core per packet when
	// hardware units move the payload (Figure 4 calibration).
	FwdTax LinearCost
	// PPSCap caps aggregate packets/sec through the traffic manager or
	// NIC switch; 0 means the cores are the only bottleneck.
	PPSCap float64
	// HasTrafficManager reports hardware shared-queue support (I2); when
	// false the runtime must build a software shuffle layer (§3.2.6).
	HasTrafficManager bool
	// NICSendCost / NICRecvCost are the hardware-assisted messaging costs
	// of Figure 6 (PKI/PKO units on LiquidIOII).
	NICSendCost LinearCost
	NICRecvCost LinearCost

	// TailThreshUs / MeanThreshUs are the scheduler thresholds of
	// §3.2.3, set from the NIC's measured MTU line-rate latency (the
	// paper reports the resulting µ+3σ thresholds: 52.8µs for the
	// LiquidIOII and 44.6µs for the Stingray in §5.4).
	TailThreshUs float64
	MeanThreshUs float64

	Accels map[string]AccelProfile
}

// CyclesScale converts a cost calibrated on the CN2350 (1.2GHz cnMIPS,
// 2-way in-order) to this NIC's cores: frequency ratio times a
// microarchitecture factor (A72 is 3-wide out-of-order; we credit it 2x
// IPC on these workloads, consistent with the Stingray echo calibration).
func (m *NICModel) CyclesScale() float64 {
	base := 1.2 // CN2350 GHz
	arch := 1.0
	if m.ISA == "ARM A72" {
		arch = 2.0
	}
	return base / (m.FreqGHz * arch)
}

// HostModel describes the host server used alongside a NIC.
type HostModel struct {
	Name    string
	Cores   int
	FreqGHz float64
	Memory  MemoryProfile
	// DPDKSendCost / DPDKRecvCost model the kernel-bypass stack of the
	// DPDK baseline (Figure 6).
	DPDKSendCost LinearCost
	DPDKRecvCost LinearCost
	// RDMASendCost / RDMARecvCost model host RDMA verbs (Figure 6).
	RDMASendCost LinearCost
	RDMARecvCost LinearCost
	// Occupancy costs: CPU time a host core spends per packet on each
	// I/O path. These are below the end-to-end latencies above because
	// batching amortizes work; they drive the core-usage accounting of
	// Figures 13 and 17.
	DPDKRxOcc sim.Time
	DPDKTxOcc sim.Time
	RingRxOcc sim.Time
	RingTxOcc sim.Time
	// CyclesScale vs the CN2350 reference core, for running offloaded
	// workload profiles on the host. The E5-2680v3 at 2.5GHz with a wide
	// OoO pipeline runs compute-bound code ≈3.5x faster than the 1.2GHz
	// cnMIPS, but memory-bound code only ≈1.3x (Table 2 DRAM 62ns vs
	// 115ns).
	ComputeSpeedup float64
	MemorySpeedup  float64
}

// WorkloadCost returns the host-core execution time for a Table 3
// workload profile, discounting by how memory-bound it is (I3).
func (h *HostModel) WorkloadCost(w WorkloadProfile) sim.Time {
	mem := w.MemBoundFraction()
	speedup := h.ComputeSpeedup*(1-mem) + h.MemorySpeedup*mem
	return sim.Time(float64(w.ExecLat1KB) / speedup)
}

// NICWorkloadCost returns a NIC-core execution time for a Table 3
// workload profile on the given NIC model.
func NICWorkloadCost(m *NICModel, w WorkloadProfile) sim.Time {
	return sim.Time(float64(w.ExecLat1KB) * m.CyclesScale())
}

// LineRatePPS returns the packets/sec a link sustains at a frame size.
func LineRatePPS(linkGbps float64, frameBytes int) float64 {
	bitsPerFrame := float64(frameBytes+WireOverheadBytes) * 8
	return linkGbps * 1e9 / bitsPerFrame
}

// GoodputGbps converts a packet rate back to bandwidth at a frame size
// (counting the frame, not wire overhead, as the paper's figures do).
func GoodputGbps(pps float64, frameBytes int) float64 {
	return pps * float64(frameBytes) * 8 / 1e9
}

// SerializationDelay is the wire time of one frame at a link speed.
func SerializationDelay(linkGbps float64, frameBytes int) sim.Time {
	bits := float64(frameBytes+WireOverheadBytes) * 8
	return sim.Time(bits / linkGbps) // ns = bits / (Gbps) since Gbps = bits/ns
}

// CoresForLineRate returns the number of NIC cores an echo server needs
// to sustain line rate at a frame size, or (0, false) if all cores are
// insufficient.
func (m *NICModel) CoresForLineRate(frameBytes int) (int, bool) {
	need := LineRatePPS(m.LinkGbps, frameBytes)
	if m.PPSCap > 0 && m.PPSCap < need {
		return 0, false
	}
	perCore := 1e9 / float64(m.EchoCost.Cost(frameBytes))
	for n := 1; n <= m.Cores; n++ {
		if float64(n)*perCore >= need {
			return n, true
		}
	}
	return 0, false
}

// MaxBandwidthGbps returns achievable bandwidth with n cores at a frame
// size given an extra per-packet processing latency on each core.
func (m *NICModel) MaxBandwidthGbps(n, frameBytes int, extra sim.Time) float64 {
	perPkt := m.EchoCost.Cost(frameBytes) + extra
	pps := float64(n) / perPkt.Seconds()
	if m.PPSCap > 0 && pps > m.PPSCap {
		pps = m.PPSCap
	}
	line := LineRatePPS(m.LinkGbps, frameBytes)
	if pps > line {
		pps = line
	}
	return GoodputGbps(pps, frameBytes)
}

// ComputeHeadroom returns the maximum tolerated per-packet processing
// latency that still sustains line rate with all cores (Figure 4's
// "computing headroom"), or 0 if line rate is unreachable even with no
// extra work. Headroom is measured against the dispatch-only forwarding
// tax, since offloaded actors piggyback on hardware packet movement.
func (m *NICModel) ComputeHeadroom(frameBytes int) sim.Time {
	line := LineRatePPS(m.LinkGbps, frameBytes)
	if m.PPSCap > 0 && m.PPSCap < line {
		return 0
	}
	budget := sim.Time(float64(m.Cores) * 1e9 / line)
	tax := m.FwdTax.Cost(frameBytes)
	if budget <= tax {
		return 0
	}
	return budget - tax
}
