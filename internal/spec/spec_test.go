package spec

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestFig2Calibration checks that the CN2350 echo cost model reproduces
// Figure 2's cores-for-line-rate: 10/6/4/3 cores for 256/512/1024/1500B,
// and that 64B/128B cannot reach line rate at all.
func TestFig2Calibration(t *testing.T) {
	m := LiquidIOII_CN2350()
	want := map[int]int{256: 10, 512: 6, 1024: 4, 1500: 3}
	for size, cores := range want {
		got, ok := m.CoresForLineRate(size)
		if !ok || got != cores {
			t.Errorf("CN2350 %dB: cores = %d (ok=%v), want %d", size, got, ok, cores)
		}
	}
	for _, size := range []int{64, 128} {
		if _, ok := m.CoresForLineRate(size); ok {
			t.Errorf("CN2350 %dB: should not reach line rate with all cores", size)
		}
	}
}

// TestFig3Calibration does the same for the Stingray: 3/2/1/1 cores for
// 256/512/1024/1500B and no line rate at 64/128B.
func TestFig3Calibration(t *testing.T) {
	m := Stingray_PS225()
	want := map[int]int{256: 3, 512: 2, 1024: 1, 1500: 1}
	for size, cores := range want {
		got, ok := m.CoresForLineRate(size)
		if !ok || got != cores {
			t.Errorf("Stingray %dB: cores = %d (ok=%v), want %d", size, got, ok, cores)
		}
	}
	for _, size := range []int{64, 128} {
		if _, ok := m.CoresForLineRate(size); ok {
			t.Errorf("Stingray %dB: should not reach line rate", size)
		}
	}
}

// TestFig4Headroom checks the computing-headroom calibration: ≈2.5µs and
// ≈9.8µs for 256B/1024B on the 10GbE CN2350, ≈0.7µs and ≈2.6µs on the
// 25GbE Stingray (§2.2.2).
func TestFig4Headroom(t *testing.T) {
	cases := []struct {
		m    *NICModel
		size int
		want float64 // µs
		tol  float64
	}{
		{LiquidIOII_CN2350(), 256, 2.5, 0.15},
		{LiquidIOII_CN2350(), 1024, 9.8, 0.3},
		{Stingray_PS225(), 256, 0.7, 0.1},
		{Stingray_PS225(), 1024, 2.6, 0.15},
	}
	for _, c := range cases {
		got := c.m.ComputeHeadroom(c.size).Micros()
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%s %dB headroom = %.2fµs, want %.1f±%.2f", c.m.Name, c.size, got, c.want, c.tol)
		}
	}
}

func TestEchoBaselineMatchesTable3(t *testing.T) {
	m := LiquidIOII_CN2350()
	echo, ok := WorkloadByName("Baseline (echo)")
	if !ok {
		t.Fatal("echo workload missing")
	}
	// The Figure 2 fit's intercept should match Table 3's echo latency
	// within 5%.
	fit := m.EchoCost.Fixed.Micros()
	meas := echo.ExecLat1KB.Micros()
	if fit/meas < 0.95 || fit/meas > 1.07 {
		t.Errorf("echo intercept %.2fµs vs Table 3 %.2fµs diverge", fit, meas)
	}
}

func TestLineRateMath(t *testing.T) {
	// 10GbE at 1500B: 10e9 / (8*1520) ≈ 0.822 Mpps.
	pps := LineRatePPS(10, 1500)
	if pps < 0.82e6 || pps > 0.83e6 {
		t.Fatalf("LineRatePPS(10, 1500) = %v", pps)
	}
	// Goodput at line rate equals link speed minus overhead share.
	g := GoodputGbps(pps, 1500)
	if g < 9.8 || g > 10.0 {
		t.Fatalf("goodput = %v", g)
	}
	// Serialization delay of a 1500B frame at 10GbE ≈ 1.216µs.
	d := SerializationDelay(10, 1500)
	if d < sim.Micros(1.2) || d > sim.Micros(1.25) {
		t.Fatalf("serialization delay = %v", d)
	}
}

func TestGoodputMonotonicInPPS(t *testing.T) {
	f := func(a, b uint32) bool {
		pa, pb := float64(a%1000000), float64(b%1000000)
		if pa > pb {
			pa, pb = pb, pa
		}
		return GoodputGbps(pa, 512) <= GoodputGbps(pb, 512)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxBandwidthSaturatesAtLineRate(t *testing.T) {
	m := Stingray_PS225()
	bw := m.MaxBandwidthGbps(8, 1500, 0)
	line := GoodputGbps(LineRatePPS(25, 1500), 1500)
	if bw != line {
		t.Fatalf("bandwidth %v exceeds/misses line rate %v", bw, line)
	}
	// Adding processing latency beyond headroom must lower bandwidth.
	h := m.ComputeHeadroom(1500)
	low := m.MaxBandwidthGbps(8, 1500, h*4)
	if low >= bw {
		t.Fatalf("extra processing did not reduce bandwidth: %v >= %v", low, bw)
	}
}

func TestMemoryHierarchyOrdering(t *testing.T) {
	for _, m := range AllNICs() {
		mm := m.Memory
		if !(mm.L1 < mm.L2 && mm.L2 < mm.DRAM) {
			t.Errorf("%s: memory latencies not ordered: %v %v %v", m.Name, mm.L1, mm.L2, mm.DRAM)
		}
	}
	h := IntelHost().Memory
	if !(h.L1 < h.L2 && h.L2 < h.L3 && h.L3 < h.DRAM) {
		t.Error("host memory hierarchy not ordered")
	}
}

// TestTable2Shape: SmartNIC memory is generally slower than the host
// (I5), with Stingray closest to host performance.
func TestTable2Shape(t *testing.T) {
	host := IntelHost().Memory
	for _, m := range AllNICs() {
		if m.Memory.L2 < host.L2 {
			t.Errorf("%s L2 faster than host L2", m.Name)
		}
	}
	sr := Stingray_PS225().Memory
	lio := LiquidIOII_CN2350().Memory
	if sr.DRAM >= lio.DRAM {
		t.Error("Stingray DRAM should outperform LiquidIO DRAM")
	}
}

func TestAcceleratorBatchingAmortizes(t *testing.T) {
	for name, a := range liquidAccels() {
		b1, ok1 := a.Latency(1)
		if !ok1 {
			t.Fatalf("%s missing bsz=1", name)
		}
		if b32, ok := a.Latency(32); ok {
			if b32 > b1 {
				t.Errorf("%s: batch 32 latency %v worse than batch 1 %v", name, b32, b1)
			}
		}
	}
	// Fallback: batch 16 uses the batch-8 profile.
	md5 := liquidAccels()["MD5"]
	l16, ok := md5.Latency(16)
	l8, _ := md5.Latency(8)
	if !ok || l16 != l8 {
		t.Errorf("batch fallback: got %v ok=%v, want %v", l16, ok, l8)
	}
	// ZIP only supports bsz=1; larger batches fall back to it.
	zip := liquidAccels()["ZIP"]
	lz, ok := zip.Latency(8)
	l1, _ := zip.Latency(1)
	if !ok || lz != l1 {
		t.Error("ZIP batch fallback broken")
	}
}

func TestHostSpeedupDependsOnMemoryBoundness(t *testing.T) {
	h := IntelHost()
	ranker, _ := WorkloadByName("Top ranker")          // IPC 1.7, MPKI 0.1: compute-bound
	classifier, _ := WorkloadByName("Flow classifier") // MPKI 15.2: memory-bound
	rSpeed := float64(ranker.ExecLat1KB) / float64(h.WorkloadCost(ranker))
	cSpeed := float64(classifier.ExecLat1KB) / float64(h.WorkloadCost(classifier))
	if rSpeed <= cSpeed {
		t.Errorf("compute-bound speedup %.2f should exceed memory-bound %.2f (I3)", rSpeed, cSpeed)
	}
	if cSpeed > 1.6 {
		t.Errorf("memory-bound host speedup %.2f implausibly high", cSpeed)
	}
}

func TestNICWorkloadCostScalesWithCores(t *testing.T) {
	w, _ := WorkloadByName("KV cache")
	c2350 := NICWorkloadCost(LiquidIOII_CN2350(), w)
	if c2350 != w.ExecLat1KB {
		t.Fatalf("reference NIC should charge the measured latency, got %v", c2350)
	}
	sr := NICWorkloadCost(Stingray_PS225(), w)
	if sr >= c2350 {
		t.Error("Stingray should run workloads faster than CN2350")
	}
	bf := NICWorkloadCost(BlueField_1M332A(), w)
	if bf <= sr {
		t.Error("0.8GHz BlueField should be slower than 3GHz Stingray")
	}
}

func TestNICByName(t *testing.T) {
	for _, m := range AllNICs() {
		got, ok := NICByName(m.Name)
		if !ok || got.Name != m.Name {
			t.Errorf("NICByName(%q) failed", m.Name)
		}
	}
	if _, ok := NICByName("nope"); ok {
		t.Error("NICByName should miss unknown names")
	}
}

func TestDMAProfilesFollowPaperOrdering(t *testing.T) {
	lio := LiquidIOII_CN2350().DMA
	bf := BlueField_1M332A().DMA
	// RDMA verbs (BlueField) roughly double native blocking DMA latency
	// for small messages (I6).
	for _, size := range []int{4, 64, 256} {
		r := float64(bf.ReadLatency(size)) / float64(lio.ReadLatency(size))
		if r < 1.5 || r > 2.6 {
			t.Errorf("RDMA/DMA read latency ratio at %dB = %.2f, want ≈2", size, r)
		}
	}
	// Non-blocking issue cost is size-independent and far below blocking.
	if lio.NonBlockingIssue >= lio.ReadLatency(4) {
		t.Error("non-blocking issue should be cheaper than blocking read")
	}
	// Large blocking transfers beat small ones on bandwidth.
	small := float64(64) / lio.ReadLatency(64).Seconds()
	large := float64(2048) / lio.ReadLatency(2048).Seconds()
	if large <= small*4 {
		t.Errorf("2KB DMA bandwidth should be several times 64B: %.2e vs %.2e B/s", large, small)
	}
}

func TestWorkloadsTableComplete(t *testing.T) {
	ws := Workloads()
	if len(ws) != 11 {
		t.Fatalf("Table 3 has 11 workload rows, got %d", len(ws))
	}
	for _, w := range ws {
		if w.ExecLat1KB <= 0 || w.IPC <= 0 {
			t.Errorf("workload %q has invalid profile", w.Name)
		}
	}
}
