// Package stats provides the streaming statistics the iPipe runtime keeps
// while scheduling: exponentially weighted moving averages of request
// latency and its standard deviation (used to approximate the tail as
// µ+3σ, §3.2.3 of the paper), exact percentile sets for offline
// experiment reporting, and windowed rate meters.
package stats

import (
	"math"
	"sort"
)

// EWMA tracks an exponentially weighted moving average of a value and of
// its squared deviation, giving a cheap running estimate of mean and
// standard deviation. Alpha is the weight of a new observation.
type EWMA struct {
	Alpha float64
	mean  float64
	vari  float64
	n     uint64
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{Alpha: alpha}
}

// Observe folds a new sample into the average.
func (e *EWMA) Observe(x float64) {
	e.n++
	if e.n == 1 {
		e.mean = x
		e.vari = 0
		return
	}
	d := x - e.mean
	// Standard EWMA mean/variance recurrences.
	e.mean += e.Alpha * d
	e.vari = (1 - e.Alpha) * (e.vari + e.Alpha*d*d)
}

// Mean returns the current estimate of the mean (0 before any samples).
func (e *EWMA) Mean() float64 { return e.mean }

// Std returns the current estimate of the standard deviation.
//
// The estimate is degenerate below two samples: with zero samples it is
// 0 by construction, and with one sample the variance recurrence has not
// yet folded in a single deviation, so Std is still exactly 0. Callers
// gating decisions on dispersion (the scheduler's tail thresholds) must
// check Ready() first or they will act on a tail estimate that collapses
// to the bare mean — or to 0 — on the first monitor tick.
func (e *EWMA) Std() float64 { return math.Sqrt(e.vari) }

// Tail returns µ+3σ, the paper's running approximation of P99. Like
// Std, it is degenerate below two samples: 0 with no samples, the bare
// first sample with one. Gate on Ready() before comparing Tail against
// a threshold.
func (e *EWMA) Tail() float64 { return e.mean + 3*e.Std() }

// Ready reports whether enough samples (≥ 2) have been observed for
// Std/Tail to carry any dispersion information at all.
func (e *EWMA) Ready() bool { return e.n >= 2 }

// Count returns the number of samples observed.
func (e *EWMA) Count() uint64 { return e.n }

// Reset clears all state, keeping Alpha.
func (e *EWMA) Reset() { e.mean, e.vari, e.n = 0, 0, 0 }

// Welford computes exact running mean and variance (Welford's algorithm).
// It is used by the experiment harness where exactness matters more than
// forgetting old samples.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe folds in a sample.
func (w *Welford) Observe(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of samples.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the exact mean (0 before any samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance.
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 before any samples).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 before any samples).
func (w *Welford) Max() float64 { return w.max }

// Sample collects individual values for exact percentile reporting. The
// experiment harness uses it for P50/P99 latency series; runs are bounded
// so unbounded growth is acceptable, but Cap provides an optional limit
// with uniform reservoir sampling beyond it.
type Sample struct {
	// Cap bounds memory; 0 means unlimited.
	Cap    int
	values []float64
	seen   uint64
	sorted bool
	// rnd is the reservoir-sampling source; injected so the simulation
	// stays deterministic.
	rnd func(n uint64) uint64
}

// NewSample returns an unbounded sample collector.
func NewSample() *Sample { return &Sample{} }

// NewReservoir returns a bounded collector keeping a uniform sample of at
// most capn values; rnd(n) must return a uniform value in [0, n).
func NewReservoir(capn int, rnd func(n uint64) uint64) *Sample {
	return &Sample{Cap: capn, rnd: rnd}
}

// Observe records a value.
func (s *Sample) Observe(x float64) {
	s.seen++
	s.sorted = false
	if s.Cap <= 0 || len(s.values) < s.Cap {
		s.values = append(s.values, x)
		return
	}
	// Reservoir replacement.
	j := s.rnd(s.seen)
	if j < uint64(s.Cap) {
		s.values[j] = x
	}
}

// Count returns the number of values observed (not necessarily retained).
func (s *Sample) Count() uint64 { return s.seen }

// Merge folds another sample's retained values into s. It is intended
// for unbounded samples (per-partition latency series aggregated in a
// fixed order after a parallel run); merging reservoirs would need
// weighted resampling, so a capped receiver panics instead of silently
// biasing.
func (s *Sample) Merge(o *Sample) {
	if o == nil {
		return
	}
	if len(o.values) == 0 {
		s.seen += o.seen
		return
	}
	if s.Cap > 0 {
		panic("stats: Merge into a capped reservoir sample")
	}
	s.values = append(s.values, o.values...)
	s.seen += o.seen
	s.sorted = false
}

// Percentile returns the p-th percentile (p in [0,100]) by nearest-rank
// on the retained values; 0 when empty. An empty sample's 0 is
// indistinguishable from a true 0 measurement — reporters that can see
// empty samples should use PercentileOK instead.
func (s *Sample) Percentile(p float64) float64 {
	v, _ := s.PercentileOK(p)
	return v
}

// PercentileOK is Percentile with an explicit emptiness signal: ok is
// false (and the value 0) when no values were retained.
func (s *Sample) PercentileOK(p float64) (float64, bool) {
	if len(s.values) == 0 {
		return 0, false
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if p <= 0 {
		return s.values[0], true
	}
	if p >= 100 {
		return s.values[len(s.values)-1], true
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.values))))
	if rank < 1 {
		rank = 1
	}
	return s.values[rank-1], true
}

// Quantile returns the q-th quantile (q in [0,1]) by the same
// nearest-rank rule as Percentile — rank ceil(q·n) clamped to ≥ 1 — so
// it is directly comparable with obs.Histogram.Quantile, which uses the
// identical rank semantics at bucket resolution. Returns 0 when empty.
func (s *Sample) Quantile(q float64) float64 {
	return s.Percentile(q * 100)
}

// Mean returns the mean of retained values.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Reset discards all values.
func (s *Sample) Reset() { s.values = s.values[:0]; s.seen = 0; s.sorted = false }
