package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMAConstantInput(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 100; i++ {
		e.Observe(5)
	}
	if e.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", e.Mean())
	}
	if e.Std() != 0 {
		t.Fatalf("Std = %v, want 0", e.Std())
	}
	if e.Tail() != 5 {
		t.Fatalf("Tail = %v, want 5", e.Tail())
	}
}

// TestEWMADegenerateBeforeTwoSamples is the regression test for the
// documented Std/Tail contract: before two samples the dispersion
// estimate carries no information (Std 0, Tail collapsed to the mean),
// and Ready() is the guard callers must use before acting on it.
func TestEWMADegenerateBeforeTwoSamples(t *testing.T) {
	e := NewEWMA(0.1)
	if e.Ready() {
		t.Fatal("Ready with 0 samples")
	}
	if e.Std() != 0 || e.Tail() != 0 || e.Mean() != 0 {
		t.Fatalf("zero-sample estimates not zero: std=%v tail=%v mean=%v", e.Std(), e.Tail(), e.Mean())
	}
	e.Observe(42)
	if e.Ready() {
		t.Fatal("Ready with 1 sample")
	}
	if e.Std() != 0 {
		t.Fatalf("one-sample Std = %v, want 0", e.Std())
	}
	if e.Tail() != e.Mean() || e.Tail() != 42 {
		t.Fatalf("one-sample Tail = %v, want bare mean 42", e.Tail())
	}
	e.Observe(10)
	if !e.Ready() {
		t.Fatal("not Ready with 2 samples")
	}
	if e.Std() <= 0 {
		t.Fatalf("two distinct samples but Std = %v", e.Std())
	}
	if e.Tail() <= e.Mean() {
		t.Fatalf("Tail %v not above mean %v with dispersion present", e.Tail(), e.Mean())
	}
	e.Reset()
	if e.Ready() {
		t.Fatal("Ready after Reset")
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.1)
	e.Observe(0)
	for i := 0; i < 500; i++ {
		e.Observe(10)
	}
	if math.Abs(e.Mean()-10) > 1e-6 {
		t.Fatalf("Mean = %v, want →10", e.Mean())
	}
}

func TestEWMATracksDispersion(t *testing.T) {
	lo, hi := NewEWMA(0.05), NewEWMA(0.05)
	for i := 0; i < 2000; i++ {
		lo.Observe(10)
		if i%2 == 0 {
			hi.Observe(1)
		} else {
			hi.Observe(19)
		}
	}
	if hi.Std() <= lo.Std() {
		t.Fatalf("high-dispersion Std %v should exceed low-dispersion %v", hi.Std(), lo.Std())
	}
	if hi.Tail() <= hi.Mean() {
		t.Fatal("Tail should exceed Mean for dispersed input")
	}
}

func TestEWMAAlphaValidation(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(100)
	e.Reset()
	if e.Count() != 0 || e.Mean() != 0 {
		t.Fatal("Reset did not clear state")
	}
	e.Observe(7)
	if e.Mean() != 7 {
		t.Fatalf("first post-reset sample should set mean, got %v", e.Mean())
	}
}

func TestWelfordExact(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Observe(x)
	}
	if w.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	if w.Std() != 2 {
		t.Fatalf("Std = %v, want 2", w.Std())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %v", w.Count())
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Constrain to a sane range to avoid float blow-up.
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range xs {
			w.Observe(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var sq float64
		for _, x := range xs {
			sq += (x - mean) * (x - mean)
		}
		wantVar := sq / float64(len(xs))
		return math.Abs(w.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(w.Var()-wantVar) < 1e-6*(1+wantVar)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePercentiles(t *testing.T) {
	s := NewSample()
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Fatalf("P50 = %v, want 50", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Fatalf("P99 = %v, want 99", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("P100 = %v, want 100", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v, want 1", got)
	}
	if got := s.Mean(); got != 50.5 {
		t.Fatalf("Mean = %v, want 50.5", got)
	}
}

func TestSampleEmptyIsZero(t *testing.T) {
	s := NewSample()
	if s.Percentile(99) != 0 || s.Mean() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSampleObserveAfterPercentile(t *testing.T) {
	s := NewSample()
	s.Observe(5)
	_ = s.Percentile(50)
	s.Observe(1) // must re-sort internally
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 after late observe = %v, want 1", got)
	}
}

func TestReservoirBoundsMemory(t *testing.T) {
	state := uint64(12345)
	rnd := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 16) % n
	}
	s := NewReservoir(100, rnd)
	for i := 0; i < 10000; i++ {
		s.Observe(float64(i))
	}
	if len(s.values) != 100 {
		t.Fatalf("retained %d values, want 100", len(s.values))
	}
	if s.Count() != 10000 {
		t.Fatalf("Count = %d, want 10000", s.Count())
	}
	// Retained values should span the input range roughly uniformly.
	if s.Percentile(50) < 2000 || s.Percentile(50) > 8000 {
		t.Fatalf("reservoir median %v implausible for uniform 0..9999", s.Percentile(50))
	}
}

func TestSampleReset(t *testing.T) {
	s := NewSample()
	s.Observe(1)
	s.Reset()
	if s.Count() != 0 || s.Percentile(50) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestPercentileOKDistinguishesEmpty(t *testing.T) {
	s := NewSample()
	if v, ok := s.PercentileOK(50); ok || v != 0 {
		t.Fatalf("empty sample: got (%v, %v), want (0, false)", v, ok)
	}
	s.Observe(0) // a legitimate zero observation
	v, ok := s.PercentileOK(99)
	if !ok || v != 0 {
		t.Fatalf("single zero observation: got (%v, %v), want (0, true)", v, ok)
	}
	s.Observe(10)
	if v, ok := s.PercentileOK(100); !ok || v != 10 {
		t.Fatalf("p100 = (%v, %v), want (10, true)", v, ok)
	}
	// Percentile stays the ambiguous-zero compatibility shim.
	if got := NewSample().Percentile(50); got != 0 {
		t.Fatalf("empty Percentile = %v, want 0", got)
	}
}

func TestPercentileOKMatchesPercentile(t *testing.T) {
	s := NewSample()
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	for _, p := range []float64{0, 25, 50, 90, 99, 100} {
		v, ok := s.PercentileOK(p)
		if !ok {
			t.Fatalf("p%v not ok on populated sample", p)
		}
		if got := s.Percentile(p); got != v {
			t.Fatalf("p%v: Percentile %v != PercentileOK %v", p, got, v)
		}
	}
}
