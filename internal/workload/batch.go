package workload

import (
	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// DefaultBatchWindow is how long the first request of a train waits for
// companions before the train is flushed.
const DefaultBatchWindow = 2 * sim.Microsecond

// Train framing on the wire: one packet header per train plus a small
// per-message subheader, versus a full max(64, data+48) packet per
// message when sent singly — the amortization insight I6 applies to
// client requests.
const (
	trainHeaderBytes = 48
	trainSubHeader   = 16
)

type batchKey struct {
	node string
	dst  actor.ID
}

type batchGroup struct {
	key   batchKey
	msgs  []actor.Msg
	sizes []int // per-message single-packet sizes, kept for fallback emits
	armed bool
}

// Batcher coalesces requests issued in the same virtual-time window and
// bound for the same destination (in the sharded RKV deployment: the
// same shard leader) into one core.BatchEnvelope message train. The
// group table is a slice in first-use order — the map below is only a
// lookup index, never iterated — so flush order is deterministic.
type Batcher struct {
	cl *Client
	// Window bounds how long a train's first request waits.
	Window sim.Time
	// MaxBatch flushes a train once it holds this many requests; values
	// ≤ 1 disable coalescing entirely (Add degenerates to Send).
	MaxBatch int

	groups []*batchGroup
	index  map[batchKey]*batchGroup

	// Trains counts multi-message packets emitted; Coalesced counts the
	// requests that rode in them. Singleton flushes go out as ordinary
	// packets and count in neither.
	Trains    uint64
	Coalesced uint64
}

// NewBatcher attaches a batcher to a client. window ≤ 0 uses
// DefaultBatchWindow.
func NewBatcher(cl *Client, window sim.Time, maxBatch int) *Batcher {
	if window <= 0 {
		window = DefaultBatchWindow
	}
	return &Batcher{
		cl:       cl,
		Window:   window,
		MaxBatch: maxBatch,
		index:    map[batchKey]*batchGroup{},
	}
}

// Add issues a request through the batcher: the first transmission is
// parked in the destination's train; retries (and everything when
// MaxBatch ≤ 1) bypass batching. Latency is measured from Add, so the
// batching wait is part of the reported response time.
func (b *Batcher) Add(r Request) {
	if b.MaxBatch <= 1 {
		b.cl.Send(r)
		return
	}
	node := r.Node
	dst := r.Dst
	b.cl.send(r, func(m actor.Msg, size int) { b.park(node, dst, m, size) })
}

func (b *Batcher) park(node string, dst actor.ID, m actor.Msg, size int) {
	k := batchKey{node: node, dst: dst}
	g := b.index[k]
	if g == nil {
		g = &batchGroup{key: k}
		b.index[k] = g
		b.groups = append(b.groups, g)
	}
	g.msgs = append(g.msgs, m)
	g.sizes = append(g.sizes, size)
	if len(g.msgs) >= b.MaxBatch {
		b.flushGroup(g)
		return
	}
	if !g.armed {
		g.armed = true
		b.cl.eng.After(b.Window, func() {
			g.armed = false
			b.flushGroup(g)
		})
	}
}

// Flush emits every parked train now, in group-creation order.
func (b *Batcher) Flush() {
	for _, g := range b.groups {
		b.flushGroup(g)
	}
}

func (b *Batcher) flushGroup(g *batchGroup) {
	n := len(g.msgs)
	if n == 0 {
		return
	}
	msgs := g.msgs
	sizes := g.sizes
	g.msgs = nil
	g.sizes = nil
	if n == 1 {
		// A lone request gains nothing from train framing; send it as the
		// plain packet it would have been.
		b.cl.emit(g.key.node, msgs[0], sizes[0])
		return
	}
	shares := make([]int, n)
	total := trainHeaderBytes
	for i, m := range msgs {
		shares[i] = trainSubHeader + len(m.Data)
		total += shares[i]
	}
	if total < 64 {
		total = 64
	}
	b.Trains++
	b.Coalesced += uint64(n)
	b.cl.net.Send(&netsim.Packet{
		Src: b.cl.Name, Dst: g.key.node, Size: total,
		FlowID:  msgs[0].FlowID,
		Payload: core.BatchEnvelope{Msgs: msgs, Sizes: shares},
	})
}
