package workload_test

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

func TestBatcherCoalescesAtMaxBatch(t *testing.T) {
	cl, client := echoCluster(t, 21, sim.Microsecond)
	b := workload.NewBatcher(client, 0, 4)
	for i := 0; i < 4; i++ {
		b.Add(workload.Request{Node: "srv", Dst: 1, Data: []byte("abcd"), FlowID: uint64(i)})
	}
	cl.Eng.Run()
	if b.Trains != 1 || b.Coalesced != 4 {
		t.Fatalf("Trains=%d Coalesced=%d, want one 4-message train", b.Trains, b.Coalesced)
	}
	if client.Received != 4 {
		t.Fatalf("received %d of 4 batched requests", client.Received)
	}
	if client.Lat.Count() != 4 {
		t.Fatalf("latency sample has %d entries", client.Lat.Count())
	}
}

func TestBatcherWindowFlushesPartialTrain(t *testing.T) {
	cl, client := echoCluster(t, 22, sim.Microsecond)
	b := workload.NewBatcher(client, 3*sim.Microsecond, 16)
	b.Add(workload.Request{Node: "srv", Dst: 1, FlowID: 1})
	b.Add(workload.Request{Node: "srv", Dst: 1, FlowID: 2})
	flushedBy := cl.Eng.Now() + 3*sim.Microsecond
	cl.Eng.At(flushedBy-1, func() {
		if client.Received != 0 {
			t.Errorf("train left before the window expired")
		}
	})
	cl.Eng.Run()
	if b.Trains != 1 || b.Coalesced != 2 {
		t.Fatalf("Trains=%d Coalesced=%d, want one 2-message train", b.Trains, b.Coalesced)
	}
	if client.Received != 2 {
		t.Fatalf("received %d of 2", client.Received)
	}
}

func TestBatcherSingletonGoesAsPlainPacket(t *testing.T) {
	cl, client := echoCluster(t, 23, sim.Microsecond)
	b := workload.NewBatcher(client, 2*sim.Microsecond, 8)
	b.Add(workload.Request{Node: "srv", Dst: 1, FlowID: 7})
	cl.Eng.Run()
	if b.Trains != 0 || b.Coalesced != 0 {
		t.Fatalf("a lone request was train-framed (Trains=%d)", b.Trains)
	}
	if client.Received != 1 {
		t.Fatal("singleton flush lost the request")
	}
}

func TestBatcherDisabledBypasses(t *testing.T) {
	cl, client := echoCluster(t, 24, sim.Microsecond)
	b := workload.NewBatcher(client, 2*sim.Microsecond, 1)
	for i := 0; i < 3; i++ {
		b.Add(workload.Request{Node: "srv", Dst: 1, FlowID: uint64(i)})
	}
	cl.Eng.Run()
	if b.Trains != 0 {
		t.Fatalf("MaxBatch=1 still built %d trains", b.Trains)
	}
	if client.Received != 3 {
		t.Fatalf("received %d of 3", client.Received)
	}
}

func TestBatcherSeparateDestinationsSeparateTrains(t *testing.T) {
	cl := core.NewCluster(25)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	for _, id := range []actor.ID{1, 2} {
		if err := n.Register(&actor.Actor{
			ID: id,
			OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
				ctx.Reply(m)
				return sim.Microsecond
			},
		}, true, 0); err != nil {
			t.Fatal(err)
		}
	}
	client := workload.NewClient(cl, "cli", 10)
	b := workload.NewBatcher(client, 2*sim.Microsecond, 2)
	for i := 0; i < 2; i++ {
		b.Add(workload.Request{Node: "srv", Dst: 1, FlowID: uint64(i)})
		b.Add(workload.Request{Node: "srv", Dst: 2, FlowID: uint64(10 + i)})
	}
	cl.Eng.Run()
	if b.Trains != 2 || b.Coalesced != 4 {
		t.Fatalf("Trains=%d Coalesced=%d, want one train per destination", b.Trains, b.Coalesced)
	}
	if client.Received != 4 {
		t.Fatalf("received %d of 4", client.Received)
	}
}

// Retries must bypass the batcher: under total loss every re-send goes
// out as a plain packet immediately, so recovery latency is never
// inflated by a second batching window.
func TestBatcherRetriesBypassTrain(t *testing.T) {
	cl, client := echoCluster(t, 26, sim.Microsecond)
	cl.Net.LossRate = 1.0
	b := workload.NewBatcher(client, 2*sim.Microsecond, 2)
	gaveUp := 0
	for i := 0; i < 2; i++ {
		b.Add(workload.Request{
			Node: "srv", Dst: 1, FlowID: uint64(i),
			Timeout: 50 * sim.Microsecond, Retries: 3,
			OnGiveUp: func() { gaveUp++ },
		})
	}
	cl.Eng.Run()
	if client.Retried != 6 {
		t.Fatalf("retried %d, want 3 per request", client.Retried)
	}
	if gaveUp != 2 {
		t.Fatalf("%d give-ups, want 2", gaveUp)
	}
	if b.Trains != 1 {
		t.Fatalf("first attempts should have formed one train, got %d", b.Trains)
	}
}

// A baseline (no-NIC) node receives trains through the DPDK path: one
// receive cost for the packet, then every message dispatches.
func TestBatcherBaselineNodeDelivery(t *testing.T) {
	cl := core.NewCluster(27)
	n := cl.AddNode(core.Config{Name: "srv"}) // no NIC
	if err := n.Register(&actor.Actor{
		ID: 1,
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			ctx.Reply(m)
			return sim.Microsecond
		},
	}, false, 0); err != nil {
		t.Fatal(err)
	}
	client := workload.NewClient(cl, "cli", 10)
	b := workload.NewBatcher(client, 0, 3)
	for i := 0; i < 3; i++ {
		b.Add(workload.Request{Node: "srv", Dst: 1, FlowID: uint64(i)})
	}
	cl.Eng.Run()
	if b.Trains != 1 || client.Received != 3 {
		t.Fatalf("Trains=%d Received=%d, want 1/3", b.Trains, client.Received)
	}
}
