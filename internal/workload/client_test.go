package workload_test

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

func echoCluster(t *testing.T, seed uint64, cost sim.Time) (*core.Cluster, *workload.Client) {
	t.Helper()
	cl := core.NewCluster(seed)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	if err := n.Register(&actor.Actor{
		ID: 1,
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			ctx.Reply(m)
			return cost
		},
	}, true, 0); err != nil {
		t.Fatal(err)
	}
	return cl, workload.NewClient(cl, "cli", 10)
}

func TestOpenLoopRate(t *testing.T) {
	cl, client := echoCluster(t, 1, sim.Microsecond)
	const rate = 100000.0
	window := 20 * sim.Millisecond
	client.OpenLoop(rate, window, func(i uint64) workload.Request {
		return workload.Request{Node: "srv", Dst: 1, Size: 256, FlowID: i}
	})
	cl.Eng.Run()
	want := rate * window.Seconds()
	got := float64(client.Sent)
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("open loop sent %.0f, want ≈%.0f", got, want)
	}
	if client.Received != client.Sent {
		t.Fatalf("responses %d of %d", client.Received, client.Sent)
	}
}

func TestOpenLoopZeroRateNoop(t *testing.T) {
	cl, client := echoCluster(t, 2, sim.Microsecond)
	client.OpenLoop(0, 10*sim.Millisecond, func(i uint64) workload.Request {
		return workload.Request{Node: "srv", Dst: 1}
	})
	cl.Eng.Run()
	if client.Sent != 0 {
		t.Fatal("zero-rate open loop sent requests")
	}
}

func TestClosedLoopKeepsDepthOutstanding(t *testing.T) {
	cl, client := echoCluster(t, 3, 10*sim.Microsecond)
	const depth = 4
	maxInFlight := uint64(0)
	client.ClosedLoop(depth, 5*sim.Millisecond, func(i uint64) workload.Request {
		return workload.Request{Node: "srv", Dst: 1, Size: 256, FlowID: i}
	})
	for at := sim.Time(0); at < 5*sim.Millisecond; at += 100 * sim.Microsecond {
		cl.Eng.At(at, func() {
			if f := client.Sent - client.Received; f > maxInFlight {
				maxInFlight = f
			}
		})
	}
	cl.Eng.Run()
	if maxInFlight > depth {
		t.Fatalf("in-flight %d exceeded depth %d", maxInFlight, depth)
	}
	if client.Received != client.Sent {
		t.Fatalf("responses %d of %d", client.Received, client.Sent)
	}
	// Closed loop should keep the pipe ~full: RTT ≈ 15µs, so expect
	// roughly depth×window/RTT completions; demand at least half that.
	if client.Received < 600 {
		t.Fatalf("closed loop only completed %d requests", client.Received)
	}
}

func TestRetryCountsOnce(t *testing.T) {
	// Without loss, retries should never fire and each response counts
	// exactly once even with aggressive timeouts (slightly above RTT so
	// a race between response and timer is resolved by the done-latch).
	cl, client := echoCluster(t, 4, 2*sim.Microsecond)
	for i := 0; i < 50; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*50*sim.Microsecond, func() {
			client.Send(workload.Request{
				Node: "srv", Dst: 1, Size: 256, FlowID: uint64(i),
				Timeout: 30 * sim.Microsecond, Retries: 3,
			})
		})
	}
	cl.Eng.Run()
	if client.Received != 50 {
		t.Fatalf("received %d, want exactly 50 (no double-count)", client.Received)
	}
}

func TestRetryFiresUnderTotalLoss(t *testing.T) {
	cl, client := echoCluster(t, 5, sim.Microsecond)
	cl.Net.LossRate = 1.0 // nothing gets through
	client.Send(workload.Request{
		Node: "srv", Dst: 1, Size: 128,
		Timeout: 50 * sim.Microsecond, Retries: 4,
	})
	cl.Eng.Run()
	if client.Retried != 4 {
		t.Fatalf("retried %d times, want all 4", client.Retried)
	}
	if client.Received != 0 {
		t.Fatal("received a response through a fully lossy network")
	}
}
