package workload_test

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

func echoCluster(t *testing.T, seed uint64, cost sim.Time) (*core.Cluster, *workload.Client) {
	t.Helper()
	cl := core.NewCluster(seed)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	if err := n.Register(&actor.Actor{
		ID: 1,
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			ctx.Reply(m)
			return cost
		},
	}, true, 0); err != nil {
		t.Fatal(err)
	}
	return cl, workload.NewClient(cl, "cli", 10)
}

func TestOpenLoopRate(t *testing.T) {
	cl, client := echoCluster(t, 1, sim.Microsecond)
	const rate = 100000.0
	window := 20 * sim.Millisecond
	client.OpenLoop(rate, window, func(i uint64) workload.Request {
		return workload.Request{Node: "srv", Dst: 1, Size: 256, FlowID: i}
	})
	cl.Eng.Run()
	want := rate * window.Seconds()
	got := float64(client.Sent)
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("open loop sent %.0f, want ≈%.0f", got, want)
	}
	if client.Received != client.Sent {
		t.Fatalf("responses %d of %d", client.Received, client.Sent)
	}
}

func TestOpenLoopZeroRateNoop(t *testing.T) {
	cl, client := echoCluster(t, 2, sim.Microsecond)
	client.OpenLoop(0, 10*sim.Millisecond, func(i uint64) workload.Request {
		return workload.Request{Node: "srv", Dst: 1}
	})
	cl.Eng.Run()
	if client.Sent != 0 {
		t.Fatal("zero-rate open loop sent requests")
	}
}

func TestClosedLoopKeepsDepthOutstanding(t *testing.T) {
	cl, client := echoCluster(t, 3, 10*sim.Microsecond)
	const depth = 4
	maxInFlight := uint64(0)
	client.ClosedLoop(depth, 5*sim.Millisecond, func(i uint64) workload.Request {
		return workload.Request{Node: "srv", Dst: 1, Size: 256, FlowID: i}
	})
	for at := sim.Time(0); at < 5*sim.Millisecond; at += 100 * sim.Microsecond {
		cl.Eng.At(at, func() {
			if f := client.Sent - client.Received; f > maxInFlight {
				maxInFlight = f
			}
		})
	}
	cl.Eng.Run()
	if maxInFlight > depth {
		t.Fatalf("in-flight %d exceeded depth %d", maxInFlight, depth)
	}
	if client.Received != client.Sent {
		t.Fatalf("responses %d of %d", client.Received, client.Sent)
	}
	// Closed loop should keep the pipe ~full: RTT ≈ 15µs, so expect
	// roughly depth×window/RTT completions; demand at least half that.
	if client.Received < 600 {
		t.Fatalf("closed loop only completed %d requests", client.Received)
	}
}

func TestRetryCountsOnce(t *testing.T) {
	// Without loss, retries should never fire and each response counts
	// exactly once even with aggressive timeouts (slightly above RTT so
	// a race between response and timer is resolved by the done-latch).
	cl, client := echoCluster(t, 4, 2*sim.Microsecond)
	for i := 0; i < 50; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*50*sim.Microsecond, func() {
			client.Send(workload.Request{
				Node: "srv", Dst: 1, Size: 256, FlowID: uint64(i),
				Timeout: 30 * sim.Microsecond, Retries: 3,
			})
		})
	}
	cl.Eng.Run()
	if client.Received != 50 {
		t.Fatalf("received %d, want exactly 50 (no double-count)", client.Received)
	}
}

func TestRetryFiresUnderTotalLoss(t *testing.T) {
	cl, client := echoCluster(t, 5, sim.Microsecond)
	cl.Net.LossRate = 1.0 // nothing gets through
	client.Send(workload.Request{
		Node: "srv", Dst: 1, Size: 128,
		Timeout: 50 * sim.Microsecond, Retries: 4,
	})
	cl.Eng.Run()
	if client.Retried != 4 {
		t.Fatalf("retried %d times, want all 4", client.Retried)
	}
	if client.Received != 0 {
		t.Fatal("received a response through a fully lossy network")
	}
}

// TestBackoffUncappedSaturates is the regression test for the backoff
// overflow: with Backoff > 1, MaxTimeout == 0, and enough retries under
// total loss, the grown interval used to double past int64 nanoseconds
// and wrap negative, handing the engine a timer in the past. The fix
// saturates at MaxUncappedTimeout; the give-up path must still fire.
func TestBackoffUncappedSaturates(t *testing.T) {
	cl, client := echoCluster(t, 6, sim.Microsecond)
	cl.Net.LossRate = 1.0
	gaveUp := 0
	const retries = 80 // 1µs doubled 80× ≫ int64 range without the clamp
	client.Send(workload.Request{
		Node: "srv", Dst: 1, Size: 128,
		Timeout: sim.Microsecond, Retries: retries, Backoff: 2,
		OnGiveUp: func() { gaveUp++ },
	})
	cl.Eng.Run()
	if client.Retried != retries {
		t.Fatalf("retried %d times, want all %d", client.Retried, retries)
	}
	if gaveUp != 1 {
		t.Fatalf("OnGiveUp fired %d times, want exactly 1", gaveUp)
	}
	// Saturated growth: the run ends within retries × MaxUncappedTimeout
	// plus the pre-saturation ramp, never at a wrapped-negative time.
	if now := cl.Eng.Now(); now <= 0 || now > sim.Time(retries+2)*workload.MaxUncappedTimeout {
		t.Fatalf("engine ended at %v; backoff growth did not saturate sanely", now)
	}
}

// TestBackoffHonorsMaxTimeout pins the explicit-cap path: growth stops
// at MaxTimeout, so the whole retry ladder fits in a known window.
func TestBackoffHonorsMaxTimeout(t *testing.T) {
	cl, client := echoCluster(t, 7, sim.Microsecond)
	cl.Net.LossRate = 1.0
	client.Send(workload.Request{
		Node: "srv", Dst: 1, Size: 128,
		Timeout: 10 * sim.Microsecond, Retries: 10, Backoff: 3,
		MaxTimeout: 40 * sim.Microsecond,
	})
	cl.Eng.Run()
	// Ladder: 10+30+40×9 = 400µs of waits; allow slack for wire time.
	if now := cl.Eng.Now(); now > 500*sim.Microsecond {
		t.Fatalf("run ended at %v, want ≤ 500µs with a 40µs cap", now)
	}
	if client.Retried != 10 {
		t.Fatalf("retried %d, want 10", client.Retried)
	}
}

// rejectAllQoS denies every non-control admission, counting calls.
type rejectAllQoS struct{ offered, latencies int }

func (q *rejectAllQoS) Admit(tenant uint16, class uint8, now sim.Time) bool {
	q.offered++
	return false
}
func (q *rejectAllQoS) Latency(tenant uint16, class uint8, us float64) { q.latencies++ }

// TestQoSRejectAccounting pins the edge-shed accounting contract (see
// the Client counter docs): an admission-denied request is Rejected,
// never Sent, fires OnGiveUp exactly once, records no latency, and
// still counts toward Offered().
func TestQoSRejectAccounting(t *testing.T) {
	cl, client := echoCluster(t, 8, sim.Microsecond)
	q := &rejectAllQoS{}
	client.SetQoS(q)
	gaveUp := 0
	cl.Eng.At(0, func() {
		client.Send(workload.Request{
			Node: "srv", Dst: 1, Size: 128,
			Timeout: 10 * sim.Microsecond, Retries: 3,
			OnGiveUp: func() { gaveUp++ },
		})
	})
	cl.Eng.Run()
	if client.Sent != 0 || client.Rejected != 1 {
		t.Fatalf("Sent=%d Rejected=%d, want 0/1: rejects must not count as sends",
			client.Sent, client.Rejected)
	}
	if gaveUp != 1 {
		t.Fatalf("OnGiveUp fired %d times, want exactly 1 (no retry of a shed request)", gaveUp)
	}
	if client.Lat.Count() != 0 {
		t.Fatalf("latency samples %d, want 0 for a request that never left the edge", client.Lat.Count())
	}
	if client.Offered() != 1 {
		t.Fatalf("Offered() = %d, want 1 (= Sent + Rejected)", client.Offered())
	}
	if client.Retried != 0 || q.latencies != 0 {
		t.Fatalf("Retried=%d qosLatencies=%d, want 0/0", client.Retried, q.latencies)
	}
}
