// Package workload provides the load generators of the evaluation: a
// pktgen-style client that attaches to the simulated network and issues
// requests to actors in open loop (Poisson arrivals, as in §5.4) or
// closed loop (as the DPDK workload generator of §5.1), plus the key
// and service-time distributions the paper uses: Zipfian keys with skew
// 0.99 over 1M keys, exponential (low dispersion) and bimodal-2 (high
// dispersion) execution-cost distributions.
package workload

import (
	"math"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Client is a load generator attached to the cluster's network.
type Client struct {
	Name string
	eng  *sim.Engine
	net  *netsim.Network
	part int
	qos  QoSHook

	// Lat collects end-to-end response latencies in microseconds.
	Lat *stats.Sample
	// Sent/Received count requests and responses; Retried counts
	// timeout-driven re-sends.
	//
	// Accounting contract: every request handed to Send ends up in
	// exactly one of two ledgers. A request the QoS hook refuses is
	// shed at the edge — Rejected increments, OnGiveUp fires, and
	// nothing else happens: no Sent, no latency sample, no retries. A
	// request that passes admission increments Sent (once, whatever the
	// retry count) and then either lands (Received, Lat) or is lost in
	// flight (OnGiveUp after the final timeout). Completion-style
	// ratios must therefore use Received/Sent for in-flight loss and
	// report Rejected separately as edge shed; Offered() is the
	// everything-attempted denominator.
	Sent     uint64
	Received uint64
	Retried  uint64
	// Rejected counts requests refused by the QoS admission hook before
	// reaching the wire (they are not counted in Sent).
	Rejected uint64
}

// Offered returns every request the workload attempted: admitted sends
// plus edge-rejected ones.
func (cl *Client) Offered() uint64 { return cl.Sent + cl.Rejected }

// QoSHook lets a multi-tenant QoS layer (internal/qos) gate and observe
// client traffic without this package importing it. Both methods run on
// the client's engine.
type QoSHook interface {
	// Admit charges one request against the tenant's budget at virtual
	// time now; returning false rejects the send.
	Admit(tenant uint16, class uint8, now sim.Time) bool
	// Latency observes one end-to-end response latency in microseconds.
	Latency(tenant uint16, class uint8, us float64)
}

// NewClient attaches a client node with the given link speed.
func NewClient(c *core.Cluster, name string, gbps float64) *Client {
	return NewClientAt(c, name, gbps, 0)
}

// NewClientAt is NewClient pinning the client's port to an engine
// partition of a partitioned cluster — typically the partition of the
// server node it drives, so request generation runs concurrently with
// the rest of the topology. Partition 0 on a classic cluster is
// exactly NewClient.
func NewClientAt(c *core.Cluster, name string, gbps float64, part int) *Client {
	eng := c.Eng
	if c.Group != nil {
		eng = c.Group.Engine(part)
	}
	cl := &Client{Name: name, eng: eng, net: c.Net, part: part, Lat: stats.NewSample()}
	c.Net.AttachOn(name, gbps, netsim.HandlerFunc(cl.deliver), part)
	return cl
}

// Eng returns the engine the client's events run on (the partition
// engine for clients attached with NewClientAt).
func (cl *Client) Eng() *sim.Engine { return cl.eng }

// Part returns the engine partition the client was attached to.
func (cl *Client) Part() int { return cl.part }

// SetQoS installs the admission/latency hook consulted on every Send
// (nil removes it). Install before driving load.
func (cl *Client) SetQoS(h QoSHook) { cl.qos = h }

func (cl *Client) deliver(pkt *netsim.Packet) {
	if env, ok := pkt.Payload.(core.RespEnvelope); ok {
		env.Fn(env.Msg)
	}
}

// Request describes one client request.
type Request struct {
	Node string   // destination server node
	Dst  actor.ID // destination actor
	Kind actor.Kind
	Data []byte
	// Size is the request packet size on the wire (the paper's "packet
	// size"); defaults to max(64, len(Data)+48).
	Size   int
	FlowID uint64
	// OnResp, if set, observes the application response.
	OnResp func(resp actor.Msg)
	// Timeout re-sends the request if no response arrives in time
	// (0 disables). Retries bounds re-sends; the response callback and
	// latency sample fire once, for whichever attempt lands first.
	Timeout sim.Time
	Retries int
	// Backoff multiplies the timeout after every unanswered attempt
	// (capped exponential backoff; values ≤ 1 keep the interval fixed).
	Backoff float64
	// MaxTimeout caps the grown interval. 0 falls back to
	// MaxUncappedTimeout — exponential growth must saturate somewhere,
	// or enough retries overflow sim.Time into a negative timer wait.
	MaxTimeout sim.Time
	// OnGiveUp, if set, fires when the final attempt also times out —
	// the request is then lost from the client's point of view.
	OnGiveUp func()
	// Tenant and Class tag the request for multi-tenant QoS: Tenant
	// indexes the deployment's tenant table for token-bucket admission,
	// Class (a qos.Class value) picks the server-side priority lane.
	// Zero values reproduce the legacy untagged behavior.
	Tenant uint16
	Class  uint8
}

// MaxUncappedTimeout bounds exponential backoff growth when a Request
// sets no MaxTimeout: doubling a microsecond-scale timeout ~60 times
// overflows sim.Time (int64 nanoseconds) into a negative timer wait,
// which the engine rejects as an event in the past. Ten seconds is far
// past any simulated run window, so saturating there preserves the
// "effectively unbounded" intent without the overflow.
const MaxUncappedTimeout = 10 * sim.Second

// Send issues one request now. The response latency is recorded in Lat
// when the reply lands. With Timeout set, lost requests are re-sent up
// to Retries times; duplicate responses (a late original racing a
// retry) are counted once.
func (cl *Client) Send(r Request) { cl.send(r, nil) }

// send is Send with a pluggable first transmission: when stage is
// non-nil the initial attempt is handed to it (a Batcher parks it in a
// message train) instead of going on the wire; timeout-driven retries
// always re-send as plain packets, so retry latency is never inflated
// by a second batching window.
func (cl *Client) send(r Request, stage func(m actor.Msg, size int)) {
	// Admission control happens once, at initial send time; timeout
	// retries of an admitted request are recovery traffic and are not
	// re-charged.
	if cl.qos != nil && !cl.qos.Admit(r.Tenant, r.Class, cl.eng.Now()) {
		cl.Rejected++
		if r.OnGiveUp != nil {
			r.OnGiveUp()
		}
		return
	}
	size := r.Size
	if size == 0 {
		size = len(r.Data) + 48
	}
	if size < 64 {
		size = 64
	}
	cl.Sent++
	sentAt := cl.eng.Now()
	done := false
	attempt := 0
	timeout := r.Timeout
	var fire func()
	reply := func(resp actor.Msg) {
		if done {
			return // duplicate response after a retry
		}
		done = true
		cl.Received++
		us := (cl.eng.Now() - sentAt).Micros()
		cl.Lat.Observe(us)
		if cl.qos != nil {
			cl.qos.Latency(r.Tenant, r.Class, us)
		}
		if r.OnResp != nil {
			r.OnResp(resp)
		}
	}
	fire = func() {
		m := actor.Msg{
			Kind:   r.Kind,
			Dst:    r.Dst,
			Data:   r.Data,
			FlowID: r.FlowID,
			Origin: cl.Name,
			Reply:  reply,
			Tenant: r.Tenant,
			Class:  r.Class,
		}
		if attempt == 0 && stage != nil {
			stage(m, size)
		} else {
			cl.emit(r.Node, m, size)
		}
		if r.Timeout <= 0 {
			return
		}
		wait := timeout
		if r.Backoff > 1 {
			ceil := r.MaxTimeout
			if ceil <= 0 {
				ceil = MaxUncappedTimeout
			}
			// Compare in float space: converting an out-of-range float
			// to sim.Time is implementation-defined, so clamp before
			// the conversion, not after.
			if next := float64(timeout) * r.Backoff; next < float64(ceil) {
				timeout = sim.Time(next)
			} else {
				timeout = ceil
			}
		}
		if attempt < r.Retries {
			attempt++
			cl.eng.After(wait, func() {
				if !done {
					cl.Retried++
					fire()
				}
			})
		} else if r.OnGiveUp != nil {
			cl.eng.After(wait, func() {
				if !done {
					done = true // late responses are ignored once given up
					r.OnGiveUp()
				}
			})
		}
	}
	fire()
}

// emit puts one prepared message on the wire as its own packet.
func (cl *Client) emit(node string, m actor.Msg, size int) {
	cl.net.Send(&netsim.Packet{
		Src: cl.Name, Dst: node, Size: size,
		FlowID:  m.FlowID,
		Payload: m,
	})
}

// OpenLoop drives requests with Poisson interarrivals at the given rate
// (requests/sec) for the duration, calling gen for each request.
func (cl *Client) OpenLoop(rate float64, dur sim.Time, gen func(i uint64) Request) {
	cl.OpenLoopVia(rate, dur, gen, cl.Send)
}

// OpenLoopVia is OpenLoop with a pluggable send path — pass a Batcher's
// Add to coalesce same-shard requests into message trains.
func (cl *Client) OpenLoopVia(rate float64, dur sim.Time, gen func(i uint64) Request, send func(Request)) {
	if rate <= 0 {
		return
	}
	var i uint64
	var tick func()
	deadline := cl.eng.Now() + dur
	tick = func() {
		if cl.eng.Now() >= deadline {
			return
		}
		send(gen(i))
		i++
		gap := sim.Time(cl.eng.Rand().Exp(1e9 / rate))
		if gap < 1 {
			gap = 1
		}
		cl.eng.After(gap, tick)
	}
	cl.eng.Defer(tick)
}

// ClosedLoop keeps `depth` requests outstanding until the deadline.
func (cl *Client) ClosedLoop(depth int, dur sim.Time, gen func(i uint64) Request) {
	cl.ClosedLoopVia(depth, dur, gen, cl.Send)
}

// ClosedLoopVia is ClosedLoop with a pluggable send path — pass a
// Batcher's Add to coalesce same-shard requests into message trains.
func (cl *Client) ClosedLoopVia(depth int, dur sim.Time, gen func(i uint64) Request, send func(Request)) {
	deadline := cl.eng.Now() + dur
	var i uint64
	var issue func()
	issue = func() {
		if cl.eng.Now() >= deadline {
			return
		}
		r := gen(i)
		i++
		prev := r.OnResp
		r.OnResp = func(resp actor.Msg) {
			if prev != nil {
				prev(resp)
			}
			issue()
		}
		send(r)
	}
	for k := 0; k < depth; k++ {
		cl.eng.Defer(issue)
	}
}

// Zipf generates Zipf-distributed values in [0, n) with the given skew
// (θ), using the Gray et al. constant-time algorithm as in YCSB. The
// paper's RKV workload uses n = 1M, θ = 0.99.
type Zipf struct {
	rnd   *sim.Rand
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// eulerGamma is the Euler–Mascheroni constant, used by the harmonic
// (θ=1) inverse CDF: H_k ≈ ln k + γ.
const eulerGamma = 0.5772156649015329

// NewZipf builds a generator. It precomputes ζ(n, θ) once. n must be at
// least 2 and θ in [0, 1]: outside that range the Gray et al. rejection
// constants are ±Inf/NaN and every draw silently collapses onto a
// handful of keys, so the constructor panics instead. θ=1 — where
// alpha = 1/(1-θ) is singular — takes the harmonic-case branch in Next.
func NewZipf(rnd *sim.Rand, n uint64, theta float64) *Zipf {
	if n < 2 {
		panic("workload: Zipf needs n >= 2 keys")
	}
	if theta < 0 || theta > 1 {
		panic("workload: Zipf skew must be in [0, 1]")
	}
	z := &Zipf{rnd: rnd, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	if theta == 1 {
		return z // alpha/eta unused on the harmonic branch
	}
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next Zipf value in [0, n).
func (z *Zipf) Next() uint64 {
	u := z.rnd.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	var v uint64
	if z.theta == 1 {
		// Harmonic case: invert H_k = u·H_n via H_k ≈ ln k + γ, i.e.
		// k ≈ exp(u·ζ(n,1) − γ). The two head buckets above are exact.
		v = uint64(math.Exp(uz - eulerGamma))
	} else {
		v = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// ServiceDist draws per-request execution costs; the Figure 16
// experiments contrast a low-dispersion exponential distribution with a
// high-dispersion bimodal-2.
type ServiceDist interface {
	// Draw returns one service time.
	Draw() sim.Time
	// Mean returns the distribution mean.
	Mean() sim.Time
	// Name identifies the distribution in experiment output.
	Name() string
}

// Exponential is the low-dispersion case.
type Exponential struct {
	R *sim.Rand
	M sim.Time
}

// Draw implements ServiceDist.
func (e Exponential) Draw() sim.Time {
	return sim.Time(e.R.Exp(float64(e.M)))
}

// Mean implements ServiceDist.
func (e Exponential) Mean() sim.Time { return e.M }

// Name implements ServiceDist.
func (e Exponential) Name() string { return "exponential" }

// Bimodal draws B1 with probability P1, else B2 (the paper's bimodal-2:
// e.g. 35µs/60µs on the LiquidIOII, 25µs/55µs on the Stingray).
type Bimodal struct {
	R      *sim.Rand
	B1, B2 sim.Time
	P1     float64
}

// Draw implements ServiceDist.
func (b Bimodal) Draw() sim.Time {
	if b.R.Float64() < b.P1 {
		return b.B1
	}
	return b.B2
}

// Mean implements ServiceDist.
func (b Bimodal) Mean() sim.Time {
	return sim.Time(b.P1*float64(b.B1) + (1-b.P1)*float64(b.B2))
}

// Name implements ServiceDist.
func (b Bimodal) Name() string { return "bimodal-2" }
