package workload

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestZipfSkew(t *testing.T) {
	z := NewZipf(sim.NewRand(1), 1000, 0.99)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("value %d out of range", v)
		}
		counts[v]++
	}
	// With θ=0.99 the hottest key draws a large share and far exceeds a
	// uniform share (0.1%).
	if counts[0] < n/30 {
		t.Fatalf("hottest key got %d of %d; not skewed enough", counts[0], n)
	}
	// Monotone-ish decay: key 0 beats key 100 which beats key 900.
	if !(counts[0] > counts[100] && counts[100] > counts[900]) {
		t.Fatalf("zipf decay violated: %d %d %d", counts[0], counts[100], counts[900])
	}
}

func TestZipfTheoreticalHead(t *testing.T) {
	// P(0) should be ≈ 1/ζ(n,θ).
	const keys = 10000
	z := NewZipf(sim.NewRand(7), keys, 0.99)
	want := 1 / z.zetan
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if z.Next() == 0 {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.25*want {
		t.Fatalf("P(0) = %v, want ≈%v", got, want)
	}
}

// Regression for the θ→1 collapse: the Gray et al. constants alpha =
// 1/(1-θ) and eta are singular at θ=1 (±Inf / 0), which made every draw
// land on one of ~3 keys and silently destroyed skew experiments. Both
// high-θ settings must keep real dispersion and a plausible head share.
func TestZipfHighSkewDispersion(t *testing.T) {
	const keys = 1_000_000
	const draws = 20000
	for _, theta := range []float64{0.99, 1.0} {
		z := NewZipf(sim.NewRand(13), keys, theta)
		counts := map[uint64]int{}
		top := 0
		for i := 0; i < draws; i++ {
			v := z.Next()
			if v >= keys {
				t.Fatalf("θ=%v: draw %d out of range", theta, v)
			}
			counts[v]++
			if counts[v] > top {
				top = counts[v]
			}
		}
		// The broken generator produced ≤ 3 distinct values; a working one
		// spreads thousands of distinct keys over 20k draws even at θ=1.
		if len(counts) < draws/20 {
			t.Fatalf("θ=%v: only %d distinct keys in %d draws (collapsed)", theta, len(counts), draws)
		}
		// Still Zipfian: the hottest key holds a few percent — far above a
		// uniform share but nowhere near a collapse.
		if share := float64(top) / draws; share < 0.01 || share > 0.30 {
			t.Fatalf("θ=%v: hottest key share %.3f outside (0.01, 0.30)", theta, share)
		}
	}
}

// θ=1 draws must follow the harmonic distribution: P(0) ≈ 1/H_n.
func TestZipfHarmonicHead(t *testing.T) {
	const keys = 10000
	z := NewZipf(sim.NewRand(17), keys, 1.0)
	want := 1 / z.zetan
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if z.Next() == 0 {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.25*want {
		t.Fatalf("θ=1: P(0) = %v, want ≈%v", got, want)
	}
}

func TestZipfRejectsDegenerateParams(t *testing.T) {
	cases := []struct {
		n     uint64
		theta float64
	}{
		{1, 0.99},  // n<2: eta divides by Pow(2/1,...) nonsense
		{0, 0.99},  // no keys at all
		{100, 1.5}, // θ>1: alpha negative, draws nonsensical
		{100, -1},  // negative skew undefined for this algorithm
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(n=%d, θ=%v) did not panic", c.n, c.theta)
				}
			}()
			NewZipf(sim.NewRand(1), c.n, c.theta)
		}()
	}
}

func TestExponentialDist(t *testing.T) {
	d := Exponential{R: sim.NewRand(3), M: 32 * sim.Microsecond}
	var w float64
	const n = 50000
	for i := 0; i < n; i++ {
		w += float64(d.Draw())
	}
	mean := w / n
	if math.Abs(mean-float64(d.Mean())) > 0.03*float64(d.Mean()) {
		t.Fatalf("measured mean %v vs declared %v", mean, d.Mean())
	}
	if d.Name() != "exponential" {
		t.Fatal("name")
	}
}

func TestBimodalDist(t *testing.T) {
	d := Bimodal{R: sim.NewRand(5), B1: 35 * sim.Microsecond, B2: 60 * sim.Microsecond, P1: 0.5}
	seen := map[sim.Time]int{}
	for i := 0; i < 10000; i++ {
		seen[d.Draw()]++
	}
	if len(seen) != 2 {
		t.Fatalf("bimodal produced %d distinct values", len(seen))
	}
	if seen[35*sim.Microsecond] < 4500 || seen[35*sim.Microsecond] > 5500 {
		t.Fatalf("mode balance off: %v", seen)
	}
	want := sim.Time(47500 * sim.Nanosecond)
	if d.Mean() != want {
		t.Fatalf("Mean = %v, want %v", d.Mean(), want)
	}
}

func TestBimodalHigherDispersionThanExponentialTail(t *testing.T) {
	// The defining property for Figure 16: bimodal-2 has two well-
	// separated modes; exponential with the same mean has more mass near
	// zero but the *per-actor separation* the scheduler sees is the
	// bimodal's distinct modes.
	exp := Exponential{R: sim.NewRand(9), M: 47500 * sim.Nanosecond}
	bi := Bimodal{R: sim.NewRand(9), B1: 35 * sim.Microsecond, B2: 60 * sim.Microsecond, P1: 0.5}
	if bi.Mean() != exp.Mean() {
		t.Fatalf("means differ: %v vs %v", bi.Mean(), exp.Mean())
	}
}
