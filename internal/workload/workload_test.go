package workload

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestZipfSkew(t *testing.T) {
	z := NewZipf(sim.NewRand(1), 1000, 0.99)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("value %d out of range", v)
		}
		counts[v]++
	}
	// With θ=0.99 the hottest key draws a large share and far exceeds a
	// uniform share (0.1%).
	if counts[0] < n/30 {
		t.Fatalf("hottest key got %d of %d; not skewed enough", counts[0], n)
	}
	// Monotone-ish decay: key 0 beats key 100 which beats key 900.
	if !(counts[0] > counts[100] && counts[100] > counts[900]) {
		t.Fatalf("zipf decay violated: %d %d %d", counts[0], counts[100], counts[900])
	}
}

func TestZipfTheoreticalHead(t *testing.T) {
	// P(0) should be ≈ 1/ζ(n,θ).
	const keys = 10000
	z := NewZipf(sim.NewRand(7), keys, 0.99)
	want := 1 / z.zetan
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if z.Next() == 0 {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.25*want {
		t.Fatalf("P(0) = %v, want ≈%v", got, want)
	}
}

func TestExponentialDist(t *testing.T) {
	d := Exponential{R: sim.NewRand(3), M: 32 * sim.Microsecond}
	var w float64
	const n = 50000
	for i := 0; i < n; i++ {
		w += float64(d.Draw())
	}
	mean := w / n
	if math.Abs(mean-float64(d.Mean())) > 0.03*float64(d.Mean()) {
		t.Fatalf("measured mean %v vs declared %v", mean, d.Mean())
	}
	if d.Name() != "exponential" {
		t.Fatal("name")
	}
}

func TestBimodalDist(t *testing.T) {
	d := Bimodal{R: sim.NewRand(5), B1: 35 * sim.Microsecond, B2: 60 * sim.Microsecond, P1: 0.5}
	seen := map[sim.Time]int{}
	for i := 0; i < 10000; i++ {
		seen[d.Draw()]++
	}
	if len(seen) != 2 {
		t.Fatalf("bimodal produced %d distinct values", len(seen))
	}
	if seen[35*sim.Microsecond] < 4500 || seen[35*sim.Microsecond] > 5500 {
		t.Fatalf("mode balance off: %v", seen)
	}
	want := sim.Time(47500 * sim.Nanosecond)
	if d.Mean() != want {
		t.Fatalf("Mean = %v, want %v", d.Mean(), want)
	}
}

func TestBimodalHigherDispersionThanExponentialTail(t *testing.T) {
	// The defining property for Figure 16: bimodal-2 has two well-
	// separated modes; exponential with the same mean has more mass near
	// zero but the *per-actor separation* the scheduler sees is the
	// bimodal's distinct modes.
	exp := Exponential{R: sim.NewRand(9), M: 47500 * sim.Nanosecond}
	bi := Bimodal{R: sim.NewRand(9), B1: 35 * sim.Microsecond, B2: 60 * sim.Microsecond, P1: 0.5}
	if bi.Mean() != exp.Mean() {
		t.Fatalf("means differ: %v vs %v", bi.Mean(), exp.Mean())
	}
}
