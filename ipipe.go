// Package ipipe is a framework for offloading distributed applications
// onto Multicore SoC SmartNICs, reproducing "Offloading Distributed
// Applications onto SmartNICs using iPipe" (SIGCOMM 2019) as a
// simulation-backed Go library.
//
// Applications are written as actors: computation agents with private
// state (held in distributed memory objects) that react to messages.
// The iPipe runtime schedules actor executions across the SmartNIC's
// wimpy cores and the host's beefy ones with a hybrid FCFS+DRR
// scheduler, migrating actors dynamically as traffic changes.
//
// Since the original system is firmware on LiquidIOII/BlueField/
// Stingray hardware, this library runs every component — NIC cores,
// DMA engines, links, hosts — on a deterministic discrete-event
// simulator whose parameters come from the paper's own hardware
// characterization (§2). The functional logic (Multi-Paxos, LSM trees,
// OCC transactions, analytics operators, TCAM firewalls, IPSec) is
// real, executable Go.
//
// Quick start:
//
//	cl := ipipe.NewCluster(1)
//	node := cl.AddNode(ipipe.NodeConfig{Name: "srv", NIC: ipipe.LiquidIOII_CN2350()})
//	echo := &ipipe.Actor{
//		ID: 1,
//		OnMessage: func(ctx ipipe.Ctx, m ipipe.Msg) ipipe.Duration {
//			ctx.Reply(m)
//			return 2 * ipipe.Microsecond
//		},
//	}
//	node.Register(echo, true /* on the NIC */, 0)
//	client := ipipe.NewClient(cl, "cli", 10)
//	client.Send(ipipe.Request{Node: "srv", Dst: 1, Size: 512})
//	cl.Eng.Run()
package ipipe

import (
	"repro/internal/actor"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// Core framework types, re-exported from the internal packages so user
// code (and the bundled examples) needs only this import.
type (
	// Cluster is a deployment: engine, network, actor table, nodes.
	Cluster = core.Cluster
	// Node is one server (host + optional SmartNIC).
	Node = core.Node
	// NodeConfig configures a node at creation.
	NodeConfig = core.Config
	// Actor is the unit of offloading.
	Actor = actor.Actor
	// ActorID identifies an actor.
	ActorID = actor.ID
	// Msg is an asynchronous actor message.
	Msg = actor.Msg
	// Kind tags message types.
	Kind = actor.Kind
	// Ctx is the capability surface handed to actor handlers.
	Ctx = actor.Ctx
	// Duration is virtual time (nanoseconds).
	Duration = sim.Time
	// Client is a load generator attached to the simulated network.
	Client = workload.Client
	// Request is one client request.
	Request = workload.Request
	// Batcher coalesces same-destination requests into message trains
	// (the paper's I6 insight); drive it via Client.ClosedLoopVia /
	// OpenLoopVia with Batcher.Add as the send path.
	Batcher = workload.Batcher
	// NICModel is a SmartNIC hardware profile.
	NICModel = spec.NICModel
	// HostModel is a host server profile.
	HostModel = spec.HostModel
	// MigrationRecord reports a push migration's phase timings.
	MigrationRecord = core.MigrationRecord
	// Tracer records cross-layer request spans; export with
	// WriteChromeTrace and open in chrome://tracing or Perfetto.
	Tracer = obs.Tracer
	// Collector snapshots cluster metrics on a virtual-time interval;
	// export with WriteNDJSON.
	Collector = obs.Collector
	// InvariantChecker audits runtime invariants (message conservation,
	// per-flow FIFO, DRR fairness, ring credits, byte accounting) as the
	// simulation runs; a nil checker is the zero-cost disabled state.
	InvariantChecker = invariant.Checker
)

// Virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewCluster creates an empty deployment with a deterministic seed.
func NewCluster(seed uint64) *Cluster { return core.NewCluster(seed) }

// NewClient attaches a load generator to the cluster's network.
func NewClient(c *Cluster, name string, gbps float64) *Client {
	return workload.NewClient(c, name, gbps)
}

// NewBatcher wraps a client with request batching: requests staged via
// Add that share a destination within the window leave as one message
// train. window <= 0 uses the default (2µs); maxBatch <= 1 disables
// coalescing (Add degenerates to Client.Send).
func NewBatcher(c *Client, window Duration, maxBatch int) *Batcher {
	return workload.NewBatcher(c, window, maxBatch)
}

// NewTracer creates a request tracer; attach it with Cluster.EnableTracing
// before registering workload traffic.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetricsCollector creates a metrics collector sampling the cluster
// every interval of virtual time (0 uses the default, 100µs). Attach it
// with Cluster.EnableMetrics and call Start before Eng.Run.
func NewMetricsCollector(c *Cluster, interval Duration) *Collector {
	if interval <= 0 {
		interval = obs.DefaultMetricsInterval
	}
	return obs.NewCollector(c.Eng, interval)
}

// NewInvariantChecker attaches a runtime invariant checker to the
// cluster and returns it. Call before deploying applications and
// running the engine (the FIFO and byte-accounting audits must observe
// every push/alloc from the start); after Eng.Run, call Finish to
// evaluate the end-of-run conservation equalities, then inspect Err,
// Violations, or Summary.
func NewInvariantChecker(c *Cluster) *InvariantChecker {
	chk := invariant.New(c.Eng)
	c.EnableInvariants(chk)
	return chk
}

// The four characterized SmartNIC models (Table 1).
var (
	LiquidIOII_CN2350 = spec.LiquidIOII_CN2350
	LiquidIOII_CN2360 = spec.LiquidIOII_CN2360
	BlueField_1M332A  = spec.BlueField_1M332A
	Stingray_PS225    = spec.Stingray_PS225
)

// IntelHost returns the testbed host model (E5-2680 v3).
func IntelHost() *HostModel { return spec.IntelHost() }

// Experiment runs one of the paper's tables/figures by id (see
// ExperimentIDs) and returns its rendered result.
func Experiment(id string, quick bool, seed uint64) (*bench.Result, error) {
	return bench.Run(id, bench.Options{Quick: quick, Seed: seed})
}

// ExperimentIDs lists the reproducible tables and figures.
func ExperimentIDs() []string { return bench.IDs() }
