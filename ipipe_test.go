package ipipe_test

import (
	"fmt"
	"testing"

	ipipe "repro"
)

// TestFacadeQuickstart exercises the public API end to end, mirroring
// examples/quickstart.
func TestFacadeQuickstart(t *testing.T) {
	cl := ipipe.NewCluster(1)
	node := cl.AddNode(ipipe.NodeConfig{Name: "srv", NIC: ipipe.LiquidIOII_CN2350()})
	echo := &ipipe.Actor{
		ID: 1,
		OnMessage: func(ctx ipipe.Ctx, m ipipe.Msg) ipipe.Duration {
			ctx.Reply(m)
			return 2 * ipipe.Microsecond
		},
	}
	if err := node.Register(echo, true, 0); err != nil {
		t.Fatal(err)
	}
	client := ipipe.NewClient(cl, "cli", 10)
	for i := 0; i < 50; i++ {
		at := ipipe.Duration(i) * 10 * ipipe.Microsecond
		cl.Eng.At(at, func() {
			client.Send(ipipe.Request{Node: "srv", Dst: 1, Size: 512})
		})
	}
	cl.Eng.Run()
	if client.Received != 50 {
		t.Fatalf("received %d of 50", client.Received)
	}
	if node.HostCoresUsed() > 0.01 {
		t.Fatal("NIC echo should not consume host cores")
	}
}

func TestFacadeRKV(t *testing.T) {
	cl := ipipe.NewCluster(2)
	var nodes []*ipipe.Node
	for i := 0; i < 3; i++ {
		nodes = append(nodes, cl.AddNode(ipipe.NodeConfig{
			Name: fmt.Sprintf("kv%d", i), NIC: ipipe.LiquidIOII_CN2350(),
		}))
	}
	d, err := ipipe.RKVSpec{
		Common: ipipe.DeployCommon{Placement: ipipe.OnNIC},
		Nodes:  nodes, BaseID: 100, MemLimit: 1 << 20,
	}.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	client := ipipe.NewClient(cl, "cli", 10)
	var got []byte
	client.Send(ipipe.Request{
		Node: "kv0", Dst: d.LeaderActor(), Kind: ipipe.RKVKindReq,
		Data: ipipe.RKVPut([]byte("k"), []byte("v")), Size: 256,
		OnResp: func(ipipe.Msg) {
			client.Send(ipipe.Request{
				Node: "kv0", Dst: d.LeaderActor(), Kind: ipipe.RKVKindReq,
				Data: ipipe.RKVGet([]byte("k")), Size: 256,
				OnResp: func(resp ipipe.Msg) { got = resp.Data },
			})
		},
	})
	cl.Eng.Run()
	if len(got) == 0 || ipipe.RKVStatusOf(got) != ipipe.RKVStatusOK || string(got[1:]) != "v" {
		t.Fatalf("facade RKV round trip: %q", got)
	}
}

func TestFacadeDT(t *testing.T) {
	cl := ipipe.NewCluster(3)
	coord := cl.AddNode(ipipe.NodeConfig{Name: "coord", NIC: ipipe.LiquidIOII_CN2350()})
	p1 := cl.AddNode(ipipe.NodeConfig{Name: "p1", NIC: ipipe.LiquidIOII_CN2350()})
	dt, err := ipipe.DTSpec{
		Common:      ipipe.DeployCommon{Placement: ipipe.OnNIC},
		Coordinator: coord, Participants: []*ipipe.Node{p1}, BaseID: 100,
	}.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	c, stores := dt.Coord, dt.Stores
	client := ipipe.NewClient(cl, "cli", 10)
	var outcome ipipe.DTOutcome
	txn := ipipe.DTTxn{Writes: []ipipe.DTOp{{Key: []byte("x"), Value: []byte("1")}}}
	client.Send(ipipe.Request{
		Node: "coord", Dst: 100, Kind: ipipe.DTKindTxn,
		Data: ipipe.DTEncodeTxn(txn), Size: 256,
		OnResp: func(resp ipipe.Msg) { outcome, _ = ipipe.DTDecodeOutcome(resp.Data) },
	})
	cl.Eng.Run()
	if outcome != ipipe.DTOutcomeCommitted || c.Committed != 1 {
		t.Fatalf("outcome=%d committed=%d", outcome, c.Committed)
	}
	if stores[0].Len() == 0 {
		t.Fatal("participant store empty after commit")
	}
}

func TestFacadeRTAAndNF(t *testing.T) {
	cl := ipipe.NewCluster(4)
	n := cl.AddNode(ipipe.NodeConfig{Name: "w", NIC: ipipe.LiquidIOII_CN2350()})
	var top []ipipe.RTAEntry
	rta, err := ipipe.RTASpec{
		Common: ipipe.DeployCommon{Placement: ipipe.OnNIC},
		Node:   n, Aggregator: n, BaseID: 10,
		Discard: []string{"bad"}, TopN: 3,
		OnUpdate: func(t []ipipe.RTAEntry) { top = t },
	}.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	topo := rta.Topology
	if _, err := (ipipe.FirewallSpec{
		Common: ipipe.DeployCommon{Placement: ipipe.OnNIC},
		Node:   n, ID: 50, Rules: ipipe.UniformFirewallRules(64),
	}).Deploy(); err != nil {
		t.Fatal(err)
	}
	if _, err := (ipipe.IPSecSpec{
		Common: ipipe.DeployCommon{Placement: ipipe.OnNIC},
		Node:   n, ID: 51, Key: make([]byte, 32), MACKey: []byte("k"),
	}).Deploy(); err != nil {
		t.Fatal(err)
	}
	client := ipipe.NewClient(cl, "cli", 10)
	for i := 0; i < 64; i++ {
		i := i
		cl.Eng.At(ipipe.Duration(i)*20*ipipe.Microsecond, func() {
			client.Send(ipipe.Request{
				Node: "w", Dst: topo.Filter, Kind: ipipe.RTAKindTuples,
				Data: ipipe.RTAEncodeTuples([]string{"hot", "hot", "cold", "bad"}),
				Size: 256, FlowID: uint64(i),
			})
		})
	}
	var verdict ipipe.NFVerdict
	cl.Eng.At(2*ipipe.Millisecond, func() {
		client.Send(ipipe.Request{
			Node: "w", Dst: 50, Data: ipipe.FiveTuple{SrcIP: 0}.Encode(), Size: 128,
			OnResp: func(resp ipipe.Msg) { verdict = ipipe.NFVerdictOf(resp.Data) },
		})
	})
	cl.Eng.Run()
	if len(top) == 0 || top[0].Token != "hot" {
		t.Fatalf("RTA top = %v", top)
	}
	if verdict != ipipe.NFVerdictAllow {
		t.Fatalf("firewall verdict %d", verdict)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := ipipe.ExperimentIDs()
	if len(ids) < 19 {
		t.Fatalf("experiment registry has %d entries", len(ids))
	}
	r, err := ipipe.Experiment("table2", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("table2 empty via facade")
	}
	if _, err := ipipe.Experiment("nope", true, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
